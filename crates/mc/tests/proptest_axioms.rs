//! Property tests for the model checker.
//!
//! 1. **Axiom soundness**: every feasible execution of a random program
//!    must pass the *independent* offline validator in
//!    `cdsspec-c11::relations` (enabled via `Config::validating`, which
//!    also cross-checks the online vector clocks against recomputed hb).
//! 2. **SC adequacy**: for programs whose operations are all `seq_cst`,
//!    the set of observable read-value vectors must equal the set computed
//!    by a naive sequentially-consistent interleaving simulator — i.e. the
//!    checker is neither missing SC behaviors nor inventing non-SC ones.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use cdsspec_mc as mc;
use mc::MemOrd::{self, *};
use mc::{Atomic, Config};
use proptest::prelude::*;

/// A step of a random program.
#[derive(Clone, Copy, Debug)]
enum Step {
    Load(usize),
    Store(usize, i64),
    FetchAdd(usize, i64),
    Cas(usize, i64, i64),
    Fence,
}

type Program = Vec<Vec<(Step, MemOrd)>>;
type ReadLog = Arc<Mutex<Vec<(usize, Vec<i64>)>>>;

fn ord_strategy() -> impl Strategy<Value = MemOrd> {
    prop_oneof![
        Just(Relaxed),
        Just(Acquire),
        Just(Release),
        Just(AcqRel),
        Just(SeqCst),
    ]
}

fn step_strategy(locs: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..locs).prop_map(Step::Load),
        (0..locs, 1..6i64).prop_map(|(l, v)| Step::Store(l, v)),
        (0..locs, 1..3i64).prop_map(|(l, v)| Step::FetchAdd(l, v)),
        (0..locs, 0..6i64, 1..6i64).prop_map(|(l, e, n)| Step::Cas(l, e, n)),
        Just(Step::Fence),
    ]
}

fn program_strategy(threads: usize, steps: usize, locs: usize) -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop::collection::vec((step_strategy(locs), ord_strategy()), 1..=steps),
        1..=threads,
    )
}

/// Sanitize orderings to what C11 allows per operation kind.
fn legal_ord(step: Step, ord: MemOrd) -> MemOrd {
    match step {
        Step::Load(_) => match ord {
            Release | AcqRel => Acquire,
            o => o,
        },
        Step::Store(..) => match ord {
            Acquire | AcqRel => Release,
            o => o,
        },
        _ => ord,
    }
}

/// Run a program under the model checker, returning the set of per-thread
/// read-value vectors over all feasible executions.
fn run_modeled(prog: &Program, locs: usize, force_sc: bool) -> (BTreeSet<Vec<i64>>, mc::Stats) {
    let prog = Arc::new(prog.clone());
    let outcomes: Arc<Mutex<BTreeSet<Vec<i64>>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let oc = Arc::clone(&outcomes);
    let config = Config {
        max_executions: 300_000,
        ..Config::validating()
    };

    let stats = mc::explore(config, move || {
        let cells: Vec<Atomic<i64>> = (0..locs).map(|_| Atomic::new(0)).collect();
        let reads: ReadLog = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (ti, steps) in prog.iter().enumerate().skip(1) {
            let steps = steps.clone();
            let cells = cells.clone();
            let reads = Arc::clone(&reads);
            handles.push(mc::thread::spawn(move || {
                let r = interp(&steps, &cells, force_sc);
                reads.lock().unwrap().push((ti, r));
            }));
        }
        let r0 = interp(&prog[0], &cells, force_sc);
        reads.lock().unwrap().push((0, r0));
        for h in handles {
            h.join();
        }
        let mut all = reads.lock().unwrap().clone();
        all.sort_by_key(|(ti, _)| *ti);
        let flat: Vec<i64> = all.into_iter().flat_map(|(_, v)| v).collect();
        oc.lock().unwrap().insert(flat);
    });
    let set = outcomes.lock().unwrap().clone();
    (set, stats)
}

fn interp(steps: &[(Step, MemOrd)], cells: &[Atomic<i64>], force_sc: bool) -> Vec<i64> {
    let mut reads = Vec::new();
    for &(step, ord) in steps {
        let ord = if force_sc {
            SeqCst
        } else {
            legal_ord(step, ord)
        };
        match step {
            Step::Load(l) => reads.push(cells[l].load(ord)),
            Step::Store(l, v) => cells[l].store(v, ord),
            Step::FetchAdd(l, v) => reads.push(cells[l].fetch_add(v, ord)),
            Step::Cas(l, e, n) => {
                // Under force_sc the *failure* ordering must stay SC too:
                // C11 lets a failed CAS read with a weaker ordering, and a
                // stale acquire read would be (correctly!) non-SC.
                let fail = if force_sc {
                    SeqCst
                } else {
                    ord.weaken_load().unwrap_or(Relaxed)
                };
                let r = cells[l].compare_exchange(e, n, ord, fail);
                reads.push(match r {
                    Ok(old) => old,
                    Err(seen) => seen,
                });
            }
            Step::Fence => mc::fence(ord),
        }
    }
    reads
}

/// Naive SC reference: enumerate all interleavings, maintaining a flat
/// memory array; collect the same read vectors.
fn run_naive_sc(prog: &Program, locs: usize) -> BTreeSet<Vec<i64>> {
    let mut outcomes = BTreeSet::new();
    let mut positions = vec![0usize; prog.len()];
    let mut memory = vec![0i64; locs];
    let mut reads: Vec<Vec<i64>> = vec![Vec::new(); prog.len()];
    recurse(prog, &mut positions, &mut memory, &mut reads, &mut outcomes);
    outcomes
}

fn recurse(
    prog: &Program,
    positions: &mut Vec<usize>,
    memory: &mut Vec<i64>,
    reads: &mut Vec<Vec<i64>>,
    outcomes: &mut BTreeSet<Vec<i64>>,
) {
    let mut done = true;
    for t in 0..prog.len() {
        if positions[t] >= prog[t].len() {
            continue;
        }
        done = false;
        let (step, _) = prog[t][positions[t]];
        positions[t] += 1;
        let (undo_mem, undo_read): (Option<(usize, i64)>, bool) = match step {
            Step::Load(l) => {
                reads[t].push(memory[l]);
                (None, true)
            }
            Step::Store(l, v) => {
                let old = memory[l];
                memory[l] = v;
                (Some((l, old)), false)
            }
            Step::FetchAdd(l, v) => {
                let old = memory[l];
                reads[t].push(old);
                memory[l] = old.wrapping_add(v);
                (Some((l, old)), true)
            }
            Step::Cas(l, e, n) => {
                let old = memory[l];
                reads[t].push(old);
                if old == e {
                    memory[l] = n;
                    (Some((l, old)), true)
                } else {
                    (None, true)
                }
            }
            Step::Fence => (None, false),
        };
        recurse(prog, positions, memory, reads, outcomes);
        if let Some((l, old)) = undo_mem {
            memory[l] = old;
        }
        if undo_read {
            reads[t].pop();
        }
        positions[t] -= 1;
    }
    if done {
        outcomes.insert(reads.iter().flat_map(|v| v.iter().copied()).collect());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every feasible execution of a random weakly-ordered program passes
    /// the independent axiom validator (checked inside explore via
    /// `validate_axioms`), and exploration terminates.
    #[test]
    fn axioms_hold_on_random_programs(prog in program_strategy(3, 3, 2)) {
        let (_, stats) = run_modeled(&prog, 2, false);
        let axiom_bug = stats.bugs.iter().any(|b| matches!(b.bug, mc::Bug::AxiomViolation { .. }));
        prop_assert!(!axiom_bug, "axiom violation: {:?}", stats.bugs);
        prop_assert!(stats.feasible > 0);
        prop_assert!(!stats.truncated(), "exploration truncated: {}", stats.summary());
    }

    /// With everything seq_cst, the modeled outcome set equals the naive
    /// SC interleaving set exactly.
    #[test]
    fn seq_cst_programs_match_naive_sc(prog in program_strategy(3, 3, 2)) {
        let (modeled, stats) = run_modeled(&prog, 2, true);
        prop_assert!(!stats.buggy(), "unexpected bug: {:?}", stats.bugs);
        let naive = run_naive_sc(&prog, 2);
        prop_assert_eq!(
            &modeled, &naive,
            "SC outcome sets diverge:\n modeled-only: {:?}\n naive-only: {:?}",
            modeled.difference(&naive).collect::<Vec<_>>(),
            naive.difference(&modeled).collect::<Vec<_>>()
        );
    }

    /// Weakening orderings can only grow the outcome set relative to SC
    /// (monotonicity): every SC outcome of the same program remains
    /// observable, and nothing the validator rejects appears.
    #[test]
    fn weak_outcomes_superset_of_sc(prog in program_strategy(2, 3, 2)) {
        let (weak, stats) = run_modeled(&prog, 2, false);
        let axiom_bug = stats.bugs.iter().any(|b| matches!(b.bug, mc::Bug::AxiomViolation { .. }));
        prop_assert!(!axiom_bug, "axiom violation under weak orderings");
        let naive = run_naive_sc(&prog, 2);
        for outcome in &naive {
            prop_assert!(
                weak.contains(outcome),
                "SC outcome {:?} lost under weak orderings; weak set: {:?}",
                outcome, weak
            );
        }
    }

    /// The sleep-set reduction is sound: it must not lose (or invent)
    /// observable outcomes, only skip redundant interleavings.
    #[test]
    fn sleep_sets_preserve_outcome_sets(prog in program_strategy(3, 3, 2)) {
        let (with_sleep, s1) = run_modeled_cfg(&prog, 2, true);
        let (without, s2) = run_modeled_cfg(&prog, 2, false);
        prop_assert_eq!(
            &with_sleep, &without,
            "sleep sets changed outcomes\n only-with: {:?}\n only-without: {:?}",
            with_sleep.difference(&without).collect::<Vec<_>>(),
            without.difference(&with_sleep).collect::<Vec<_>>()
        );
        prop_assert!(
            s1.executions <= s2.executions,
            "reduction increased executions: {} vs {}",
            s1.executions,
            s2.executions
        );
    }
}

/// A checkpoint is lossless: running to a cap and resuming visits the
/// same leaves as a straight-through run, so every counter partitions.
fn modeled_closure(prog: Arc<Program>, locs: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let cells: Vec<Atomic<i64>> = (0..locs).map(|_| Atomic::new(0)).collect();
        let mut handles = Vec::new();
        for steps in prog.iter().skip(1) {
            let steps = steps.clone();
            let cells = cells.clone();
            handles.push(mc::thread::spawn(move || {
                let _ = interp(&steps, &cells, false);
            }));
        }
        let _ = interp(&prog[0], &cells, false);
        for h in handles {
            h.join();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `executions(full) == executions(to checkpoint) + executions(resume)`
    /// for every counter, on litmus-sized random programs.
    #[test]
    fn checkpoint_partitions_executions(prog in program_strategy(2, 2, 2), cap in 1u64..10) {
        let prog = Arc::new(prog);
        let base = Config { stop_on_first_bug: false, ..Config::default() };
        let full = mc::explore(base.clone(), modeled_closure(Arc::clone(&prog), 2));
        let capped = Config { max_executions: cap, ..base.clone() };
        let cut = mc::explore(capped, modeled_closure(Arc::clone(&prog), 2));
        match cut.checkpoint() {
            Some(ckpt) => {
                prop_assert_eq!(cut.stop, mc::StopReason::ExecutionCap);
                let resumed = mc::explore_from(base, ckpt, modeled_closure(prog, 2));
                // Resumed stats accumulate on top of the checkpoint, so
                // totals must land exactly on the straight-through run.
                prop_assert_eq!(resumed.executions, full.executions);
                prop_assert_eq!(resumed.feasible, full.feasible);
                prop_assert_eq!(resumed.diverged, full.diverged);
                prop_assert_eq!(resumed.sleep_pruned, full.sleep_pruned);
                prop_assert_eq!(resumed.stop, mc::StopReason::Exhausted);
            }
            None => {
                // The cap never fired: the tree fit inside it.
                prop_assert_eq!(cut.executions, full.executions);
                prop_assert_eq!(cut.stop, mc::StopReason::Exhausted);
            }
        }
    }
}

/// As [`run_modeled`] with weak orderings and a sleep-set switch.
fn run_modeled_cfg(prog: &Program, locs: usize, sleep: bool) -> (BTreeSet<Vec<i64>>, mc::Stats) {
    let prog = Arc::new(prog.clone());
    let outcomes: Arc<Mutex<BTreeSet<Vec<i64>>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let oc = Arc::clone(&outcomes);
    let config = Config {
        max_executions: 300_000,
        sleep_sets: sleep,
        ..Config::validating()
    };
    let stats = mc::explore(config, move || {
        let cells: Vec<Atomic<i64>> = (0..locs).map(|_| Atomic::new(0)).collect();
        let reads: ReadLog = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (ti, steps) in prog.iter().enumerate().skip(1) {
            let steps = steps.clone();
            let cells = cells.clone();
            let reads = Arc::clone(&reads);
            handles.push(mc::thread::spawn(move || {
                let r = interp(&steps, &cells, false);
                reads.lock().unwrap().push((ti, r));
            }));
        }
        let r0 = interp(&prog[0], &cells, false);
        reads.lock().unwrap().push((0, r0));
        for h in handles {
            h.join();
        }
        let mut all = reads.lock().unwrap().clone();
        all.sort_by_key(|(ti, _)| *ti);
        let flat: Vec<i64> = all.into_iter().flat_map(|(_, v)| v).collect();
        oc.lock().unwrap().insert(flat);
    });
    let set = outcomes.lock().unwrap().clone();
    (set, stats)
}
