//! Hardening tests for watchdog-compatible fiber hosting.
//!
//! `Config::default` now rides the fiber fast path with its hang watchdog
//! armed: a monitor thread samples the shared heartbeat and, on stall,
//! preempts the wedged fiber with a signal so the explorer can abandon it
//! and keep exploring. A `PROT_NONE` guard region below every fiber stack
//! (plus canary words for the portable fallback) turns stack overflow
//! into a clean bug report instead of silent corruption.
//!
//! These tests exercise the failure paths end to end: injected hangs must
//! be rescued with exploration continuing on fresh stacks, and deep
//! recursion must produce a deterministic report under both hosts. The
//! fiber/pool *equivalence* of these paths is pinned separately in
//! `fiber_equivalence.rs`.

use std::time::Duration;

use cdsspec_mc as mc;
use mc::MemOrd::{Acquire, Relaxed, Release};
use mc::{Atomic, Config};

/// Watchdog-on fiber config with a short stall limit for hang injection.
fn watchdog_config(limit_ms: u64) -> Config {
    Config {
        hang_timeout: Some(Duration::from_millis(limit_ms)),
        ..Config::default()
    }
}

/// A wedged fiber is rescued by the monitor thread: the exploration
/// reports `InternalHang` (with the wedged tid and last-committed event)
/// and continues through the remaining branches — and because the rescue
/// poisons the thread-local stack pool, every later execution runs on
/// fresh stacks. The clean follow-up exploration on this same OS thread
/// is the integration-level regression for "a poisoned pool never hands
/// out a contaminated stack".
#[test]
fn injected_hang_is_rescued_and_exploration_continues() {
    let body = || {
        let flag = Atomic::new(0i32);
        let t = mc::thread::spawn(move || {
            flag.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            // Wedge with no visible op and no progress hint: only the
            // watchdog can end this branch.
            loop {
                std::thread::park();
            }
        }
        t.join();
    };
    let stats = mc::explore(
        Config {
            stop_on_first_bug: false,
            ..watchdog_config(250)
        },
        body,
    );
    assert!(stats.buggy(), "injected hang not detected");
    let rendered: Vec<String> = stats.bugs.iter().map(|f| f.bug.to_string()).collect();
    assert!(
        rendered
            .iter()
            .any(|b| b.contains("internal hang: no scheduling progress for 250 ms")),
        "{rendered:?}"
    );
    // The rendering carries the wedged thread and its last-committed
    // event as a deterministic anchor.
    assert!(
        rendered.iter().any(|b| b.contains("wedged after")),
        "{rendered:?}"
    );
    // Exploration continued past the wedged branch: the read-from-init
    // branch completed as a feasible execution.
    assert!(stats.executions > 1, "{}", stats.summary());
    assert!(stats.feasible > 0, "{}", stats.summary());

    // Post-rescue hygiene: a follow-up exploration on this same OS
    // thread (same thread-local stack pool) must be spotless.
    let clean = mc::explore(watchdog_config(30_000), || {
        let a = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            a.fetch_add(1, mc::MemOrd::AcqRel);
        });
        t.join();
        mc::mc_assert!(a.load(Acquire) == 1);
    });
    assert!(!clean.buggy(), "{:?}", clean.bugs);
    assert!(clean.feasible > 0);
}

/// Frames of ~4 KiB, recursion far deeper than any stack: whoever hosts
/// this must stop it, not run off the end of memory.
#[inline(never)]
fn deep(n: u64) -> u64 {
    let mut frame = [0u8; 4096];
    frame[0] = (n & 0xff) as u8;
    std::hint::black_box(&mut frame[..]);
    if n == 0 {
        return u64::from(frame[0]);
    }
    // The add after the recursive call keeps this from becoming a loop.
    deep(n - 1).wrapping_add(u64::from(std::hint::black_box(frame[4095])))
}

/// Under the fiber host, runaway recursion hits the `PROT_NONE` guard
/// region below the fiber stack; the SIGSEGV handler (on the alternate
/// signal stack) converts the fault into a deterministic
/// `Bug::StackOverflow` and exploration shuts down cleanly. Gated to the
/// guarded-mapping target: on the heap-stack fallback unbounded recursion
/// would be genuine UB, which is exactly why guard pages exist.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[test]
fn fiber_stack_overflow_reports_cleanly() {
    let stats = mc::explore(watchdog_config(30_000), || {
        let a = Atomic::new(0i64);
        a.store(1, Relaxed);
        std::hint::black_box(deep(u64::MAX));
    });
    assert!(stats.buggy(), "overflow not detected");
    let rendered: Vec<String> = stats.bugs.iter().map(|f| f.bug.to_string()).collect();
    assert!(
        rendered
            .iter()
            .any(|b| b.contains("stack overflow") && b.contains("overran its fiber stack")),
        "{rendered:?}"
    );
}

/// `Config::fiber_stack` really sizes the stacks: a recursion that fits
/// comfortably inside the default 1 MiB overflows a 64 KiB stack, and the
/// guard-page machinery converts it into the same deterministic
/// `Bug::StackOverflow` at the smaller size. The flip side — the same
/// workload is clean at the default — pins that the small-stack report
/// comes from the configured size, not from a latent bug.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[test]
fn fiber_stack_config_sizes_the_guarded_stacks() {
    // ~40 frames x ~4 KiB ≈ 160 KiB: inside the 1 MiB default, far
    // outside a 64 KiB stack.
    let body = || {
        let a = Atomic::new(0i64);
        a.store(1, Relaxed);
        std::hint::black_box(deep(40));
    };
    let small = mc::explore(
        Config {
            fiber_stack: 64 << 10,
            ..watchdog_config(30_000)
        },
        body,
    );
    assert!(small.buggy(), "64 KiB stack survived a 160 KiB recursion");
    let rendered: Vec<String> = small.bugs.iter().map(|f| f.bug.to_string()).collect();
    assert!(
        rendered.iter().any(|b| b.contains("stack overflow")),
        "{rendered:?}"
    );

    let roomy = mc::explore(watchdog_config(30_000), body);
    assert!(
        !roomy.buggy(),
        "default stack must fit the same recursion: {:?}",
        roomy.bugs
    );
    assert!(roomy.feasible > 0);
}

/// A custom (non-default, non-overflowing) stack size hosts a normal
/// multi-threaded exploration cleanly — the canary, pooling, and switch
/// machinery have no hidden dependence on the default size.
#[test]
fn custom_fiber_stack_hosts_cleanly() {
    let stats = mc::explore(
        Config {
            fiber_stack: 256 << 10,
            ..watchdog_config(30_000)
        },
        || {
            let a = Atomic::new(0i64);
            let t = mc::thread::spawn(move || {
                a.fetch_add(1, mc::MemOrd::AcqRel);
            });
            t.join();
            mc::mc_assert!(a.load(Acquire) == 1);
        },
    );
    assert!(!stats.buggy(), "{:?}", stats.bugs);
    assert!(stats.feasible > 0);
}

/// Under the OS-thread reference host the same recursion overflows a pool
/// worker's native stack. There is no in-process report to give — std's
/// own guard page turns it into the standard "has overflowed its stack"
/// process abort — but that is still a *clean, attributed* death, not
/// silent corruption. Run it in a subprocess and assert the message.
#[test]
fn os_host_stack_overflow_aborts_cleanly() {
    if std::env::var_os("CDSSPEC_OVERFLOW_CHILD").is_some() {
        // Child: overflow a pool worker. This aborts the process.
        let _ = mc::explore(
            Config {
                fiber_hosting: false,
                ..watchdog_config(30_000)
            },
            || {
                std::hint::black_box(deep(u64::MAX));
            },
        );
        return; // unreachable on a working guard
    }
    let out = std::process::Command::new(std::env::current_exe().unwrap())
        .args([
            "os_host_stack_overflow_aborts_cleanly",
            "--exact",
            "--nocapture",
        ])
        .env("CDSSPEC_OVERFLOW_CHILD", "1")
        .output()
        .expect("re-exec test binary");
    assert!(
        !out.status.success(),
        "child survived an unbounded recursion"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("has overflowed its stack"),
        "expected std's overflow abort, got: {err}"
    );
}

/// Regression for a rescue-vs-engine-lock deadlock. Invisible operations
/// (`Data` accesses, `Atomic::new`, `mc::alloc`, …) lock `Shared::inner`
/// through `with_ctx` without posting a visible op, so a thread wedged in
/// a pure `Data::read` spin loop holds the engine lock for a large
/// fraction of every iteration while never feeding the heartbeat — the
/// exact workload the watchdog exists for. The preemption gate must cover
/// those acquisitions: a rescue landing inside one would abandon the
/// fiber with `inner` locked, and the explorer's own relock in
/// `fiber_rescued` would deadlock permanently. With the gate held across
/// the whole `with_ctx` body, the retried rescue signal can only land in
/// the gate-open window between iterations, and this exploration
/// terminates.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[test]
fn invisible_op_spin_wedge_is_rescued_without_deadlock() {
    let body = || {
        let d = mc::Data::new(0u32);
        let flag = Atomic::new(0i32);
        let t = mc::thread::spawn(move || {
            flag.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            // Wedge entirely in invisible ops: every iteration locks the
            // engine, none posts a visible op or feeds the heartbeat.
            while d.read() == 0 {}
        }
        t.join();
    };
    let stats = mc::explore(
        Config {
            fiber_hosting: true,
            stop_on_first_bug: false,
            ..watchdog_config(250)
        },
        body,
    );
    assert!(stats.buggy(), "invisible-op wedge not detected");
    let rendered: Vec<String> = stats.bugs.iter().map(|f| f.bug.to_string()).collect();
    assert!(
        rendered.iter().any(|b| b.contains("internal hang")),
        "{rendered:?}"
    );
    // Exploration survived the rescue and finished the clean branch.
    assert!(stats.executions > 1, "{}", stats.summary());
    assert!(stats.feasible > 0, "{}", stats.summary());
}

/// A freshly spawned fiber runs until its first visible operation without
/// any scheduling decision (`fiber_next` transfers to it directly), so a
/// child that wedges before its first visible op was never `last_sched`.
/// The rescue path must report the tid the signal handler actually
/// preempted — not the scheduler's last pick (the parent).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[test]
fn hang_report_names_a_never_scheduled_child() {
    let stats = mc::explore(
        Config {
            fiber_hosting: true,
            ..watchdog_config(250)
        },
        || {
            let t = mc::thread::spawn(|| {
                // Wedge before the first visible op: this thread never
                // becomes the target of a scheduling decision.
                loop {
                    std::thread::park();
                }
            });
            t.join();
        },
    );
    assert!(stats.buggy(), "wedged child not detected");
    let rendered: Vec<String> = stats.bugs.iter().map(|f| f.bug.to_string()).collect();
    assert!(
        rendered
            .iter()
            .any(|b| b.contains("internal hang") && b.contains("T1 wedged")),
        "the report must name the wedged child, not the last-scheduled parent: {rendered:?}"
    );
}
