//! Classic weak-memory litmus tests run end-to-end through the explorer.
//!
//! Each test collects the set of observable outcomes across all feasible
//! executions and checks it against the C/C++11-allowed set.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use cdsspec_mc as mc;
use mc::MemOrd::*;
use mc::{mc_assert, Atomic, Config};

type Outcomes = Arc<Mutex<BTreeSet<Vec<i64>>>>;

fn collect<F>(config: Config, f: F) -> (BTreeSet<Vec<i64>>, mc::Stats)
where
    F: Fn(&dyn Fn(Vec<i64>)) + Send + Sync + 'static,
{
    let outcomes: Outcomes = Arc::new(Mutex::new(BTreeSet::new()));
    let o2 = Arc::clone(&outcomes);
    let stats = mc::explore(config, move || {
        let o3 = Arc::clone(&o2);
        f(&move |v| {
            o3.lock().unwrap().insert(v);
        });
    });
    assert!(
        !stats.buggy(),
        "unexpected bug: {:?}",
        stats.bugs.first().map(|b| &b.bug)
    );
    let set = outcomes.lock().unwrap().clone();
    (set, stats)
}

fn cfg() -> Config {
    Config::validating()
}

/// Store buffering, relaxed: r1 = r2 = 0 must be observable.
#[test]
fn sb_relaxed_allows_both_zero() {
    let (outcomes, _) = collect(cfg(), |record| {
        let x = Atomic::new(0i64);
        let y = Atomic::new(0i64);
        let r1 = Arc::new(Mutex::new(0i64));
        let r1c = Arc::clone(&r1);
        let t = mc::thread::spawn(move || {
            x.store(1, Relaxed);
            *r1c.lock().unwrap() = y.load(Relaxed);
        });
        y.store(1, Relaxed);
        let r2 = x.load(Relaxed);
        t.join();
        record(vec![*r1.lock().unwrap(), r2]);
    });
    assert!(
        outcomes.contains(&vec![0, 0]),
        "weak SB outcome missing: {outcomes:?}"
    );
    assert!(outcomes.contains(&vec![1, 1]));
    assert!(outcomes.contains(&vec![0, 1]));
    assert!(outcomes.contains(&vec![1, 0]));
}

/// Store buffering, seq_cst: r1 = r2 = 0 is forbidden.
#[test]
fn sb_seq_cst_forbids_both_zero() {
    let (outcomes, _) = collect(cfg(), |record| {
        let x = Atomic::new(0i64);
        let y = Atomic::new(0i64);
        let r1 = Arc::new(Mutex::new(0i64));
        let r1c = Arc::clone(&r1);
        let t = mc::thread::spawn(move || {
            x.store(1, SeqCst);
            *r1c.lock().unwrap() = y.load(SeqCst);
        });
        y.store(1, SeqCst);
        let r2 = x.load(SeqCst);
        t.join();
        record(vec![*r1.lock().unwrap(), r2]);
    });
    assert!(
        !outcomes.contains(&vec![0, 0]),
        "SC must forbid 0/0: {outcomes:?}"
    );
    assert!(outcomes.len() >= 2);
}

/// Store buffering with relaxed accesses + SC fences: 0/0 forbidden.
#[test]
fn sb_sc_fences_forbid_both_zero() {
    let (outcomes, _) = collect(cfg(), |record| {
        let x = Atomic::new(0i64);
        let y = Atomic::new(0i64);
        let r1 = Arc::new(Mutex::new(0i64));
        let r1c = Arc::clone(&r1);
        let t = mc::thread::spawn(move || {
            x.store(1, Relaxed);
            mc::fence(SeqCst);
            *r1c.lock().unwrap() = y.load(Relaxed);
        });
        y.store(1, Relaxed);
        mc::fence(SeqCst);
        let r2 = x.load(Relaxed);
        t.join();
        record(vec![*r1.lock().unwrap(), r2]);
    });
    assert!(
        !outcomes.contains(&vec![0, 0]),
        "SC fences must forbid 0/0: {outcomes:?}"
    );
}

/// Message passing with release/acquire: stale data unreadable after
/// reading the flag.
#[test]
fn mp_release_acquire() {
    mc::model(|| {
        let data = Atomic::new(0i64);
        let flag = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            data.store(42, Relaxed);
            flag.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            mc_assert!(data.load(Relaxed) == 42);
        }
        t.join();
    });
}

/// Message passing with relaxed flag: the stale read must be observable.
#[test]
fn mp_relaxed_shows_stale() {
    let (outcomes, _) = collect(cfg(), |record| {
        let data = Atomic::new(0i64);
        let flag = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            data.store(42, Relaxed);
            flag.store(1, Relaxed);
        });
        let f = flag.load(Relaxed);
        let d = data.load(Relaxed);
        t.join();
        record(vec![f, d]);
    });
    assert!(
        outcomes.contains(&vec![1, 0]),
        "relaxed MP must show stale data: {outcomes:?}"
    );
    assert!(outcomes.contains(&vec![1, 42]));
}

/// Message passing through release/acquire *fences*.
#[test]
fn mp_fences() {
    mc::model(|| {
        let data = Atomic::new(0i64);
        let flag = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            data.store(7, Relaxed);
            mc::fence(Release);
            flag.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            mc::fence(Acquire);
            mc_assert!(data.load(Relaxed) == 7);
        }
        t.join();
    });
}

/// IRIW with acquire loads: the two readers may disagree on the order of
/// the two independent stores.
#[test]
fn iriw_acquire_allows_disagreement() {
    let (outcomes, _) = collect(cfg(), |record| {
        let x = Atomic::new(0i64);
        let y = Atomic::new(0i64);
        let w1 = mc::thread::spawn(move || x.store(1, Release));
        let w2 = mc::thread::spawn(move || y.store(1, Release));
        let res = Arc::new(Mutex::new((0i64, 0i64)));
        let rc = Arc::clone(&res);
        let r1 = mc::thread::spawn(move || {
            let a = x.load(Acquire);
            let b = y.load(Acquire);
            *rc.lock().unwrap() = (a, b);
        });
        let c = y.load(Acquire);
        let d = x.load(Acquire);
        w1.join();
        w2.join();
        r1.join();
        let (a, b) = *res.lock().unwrap();
        record(vec![a, b, c, d]);
    });
    // Reader 1 sees x then not-yet y; reader 2 sees y then not-yet x.
    assert!(
        outcomes.contains(&vec![1, 0, 1, 0]),
        "acq/rel IRIW must allow disagreement: {outcomes:?}"
    );
}

/// IRIW with seq_cst everywhere: disagreement is forbidden.
#[test]
fn iriw_seq_cst_forbids_disagreement() {
    let (outcomes, _) = collect(cfg(), |record| {
        let x = Atomic::new(0i64);
        let y = Atomic::new(0i64);
        let w1 = mc::thread::spawn(move || x.store(1, SeqCst));
        let w2 = mc::thread::spawn(move || y.store(1, SeqCst));
        let res = Arc::new(Mutex::new((0i64, 0i64)));
        let rc = Arc::clone(&res);
        let r1 = mc::thread::spawn(move || {
            let a = x.load(SeqCst);
            let b = y.load(SeqCst);
            *rc.lock().unwrap() = (a, b);
        });
        let c = y.load(SeqCst);
        let d = x.load(SeqCst);
        w1.join();
        w2.join();
        r1.join();
        let (a, b) = *res.lock().unwrap();
        record(vec![a, b, c, d]);
    });
    assert!(
        !outcomes.contains(&vec![1, 0, 1, 0]),
        "SC IRIW must forbid disagreement: {outcomes:?}"
    );
}

/// Coherence: a single thread re-reading a location never goes backwards.
#[test]
fn coherence_read_read() {
    mc::model(|| {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            x.store(1, Relaxed);
            x.store(2, Relaxed);
        });
        let a = x.load(Relaxed);
        let b = x.load(Relaxed);
        mc_assert!(b >= a, "coherence violated: {} then {}", a, b);
        t.join();
    });
}

/// Two concurrent fetch_adds never lose an update.
#[test]
fn fetch_add_is_atomic() {
    mc::model(|| {
        let x = Atomic::new(0i64);
        let t1 = mc::thread::spawn(move || {
            x.fetch_add(1, Relaxed);
        });
        let t2 = mc::thread::spawn(move || {
            x.fetch_add(1, Relaxed);
        });
        t1.join();
        t2.join();
        mc_assert!(x.load(Relaxed) == 2);
    });
}

/// CAS can fail by reading a stale value (the weak behavior §2 of the
/// paper revolves around), but a strong CAS reading the expected value
/// succeeds.
#[test]
fn cas_stale_failure_is_observable() {
    let (outcomes, _) = collect(cfg(), |record| {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            x.store(1, Relaxed);
        });
        // CAS expecting 1: can fail (stale read of 0) even after the store
        // is scheduled first, or succeed reading 1.
        let r = x.compare_exchange(1, 2, Relaxed, Relaxed);
        t.join();
        record(vec![r.is_ok() as i64]);
    });
    assert!(
        outcomes.contains(&vec![0]) && outcomes.contains(&vec![1]),
        "{outcomes:?}"
    );
}

/// Uninitialized atomic loads are detected.
#[test]
fn uninit_load_detected() {
    let stats = mc::explore(cfg(), || {
        let x: Atomic<i64> = Atomic::uninit();
        let _ = x.load(Relaxed);
    });
    assert!(stats.buggy());
    assert!(
        matches!(stats.bugs[0].bug, mc::Bug::UninitLoad { .. }),
        "{:?}",
        stats.bugs[0].bug
    );
}

/// Unordered non-atomic accesses are detected as data races.
#[test]
fn data_race_detected() {
    let stats = mc::explore(cfg(), || {
        let d = mc::Data::new(0i64);
        let t = mc::thread::spawn(move || d.write(1));
        d.write(2);
        t.join();
    });
    assert!(stats.buggy());
    assert!(
        matches!(stats.bugs[0].bug, mc::Bug::DataRace { .. }),
        "{:?}",
        stats.bugs[0].bug
    );
}

/// Properly published non-atomic data does not race.
#[test]
fn synchronized_data_is_race_free() {
    mc::model(|| {
        let d = mc::Data::new(0i64);
        let flag = Atomic::new(0i64);
        let t = mc::thread::spawn(move || {
            d.write(10);
            flag.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            mc_assert!(d.read() == 10);
        }
        t.join();
    });
}

/// mc_assert failures surface as bugs with the failing execution's trace.
#[test]
fn assertion_failures_are_reported() {
    let stats = mc::explore(cfg(), || {
        let x = Atomic::new(0i64);
        let t = mc::thread::spawn(move || x.store(1, Relaxed));
        // Bogus claim: the store has always happened.
        mc_assert!(x.load(Relaxed) == 1);
        t.join();
    });
    assert!(stats.buggy());
    assert!(matches!(stats.bugs[0].bug, mc::Bug::UserPanic { .. }));
    assert!(!stats.bugs[0].trace.is_empty());
}

/// A futile spin loop is pruned as divergence, not an infinite hang.
#[test]
fn futile_spin_is_pruned() {
    let stats = mc::explore(cfg(), || {
        let flag = Atomic::new(0i64);
        // Nobody ever sets the flag.
        while flag.load(Acquire) == 0 {
            mc::spin_loop();
        }
    });
    assert!(!stats.buggy());
    assert!(stats.diverged > 0);
    assert_eq!(stats.feasible, 0);
}

/// A released spin loop completes once the releasing store is scheduled.
#[test]
fn released_spin_completes() {
    let stats = mc::explore(cfg(), || {
        let flag = Atomic::new(0i64);
        let t = mc::thread::spawn(move || flag.store(1, Release));
        while flag.load(Acquire) == 0 {
            mc::spin_loop();
        }
        t.join();
    });
    assert!(!stats.buggy());
    assert!(stats.feasible > 0);
}

/// Sleep sets must not change the set of observable outcomes.
#[test]
fn sleep_sets_preserve_outcomes() {
    fn run(sleep: bool) -> (BTreeSet<Vec<i64>>, u64) {
        let config = Config {
            sleep_sets: sleep,
            ..Config::validating()
        };
        let (outcomes, stats) = collect(config, |record| {
            let x = Atomic::new(0i64);
            let y = Atomic::new(0i64);
            let t = mc::thread::spawn(move || {
                x.store(1, Release);
                y.store(1, Release);
            });
            let a = y.load(Acquire);
            let b = x.load(Acquire);
            t.join();
            record(vec![a, b]);
        });
        (outcomes, stats.executions)
    }
    let (with, n_with) = run(true);
    let (without, n_without) = run(false);
    assert_eq!(with, without);
    assert!(
        n_with <= n_without,
        "sleep sets should not increase executions"
    );
}

/// Join must synchronize: after joining, the child's writes are visible.
#[test]
fn join_synchronizes() {
    mc::model(|| {
        let x = Atomic::new(0i64);
        let d = mc::Data::new(0i64);
        let t = mc::thread::spawn(move || {
            d.write(5);
            x.store(1, Relaxed);
        });
        t.join();
        mc_assert!(x.load(Relaxed) == 1);
        mc_assert!(d.read() == 5);
    });
}

/// Exploration statistics look sane on a tiny deterministic program.
#[test]
fn stats_single_thread() {
    let stats = mc::explore(cfg(), || {
        let x = Atomic::new(1i64);
        mc_assert!(x.load(Relaxed) == 1);
    });
    assert_eq!(stats.executions, 1);
    assert_eq!(stats.feasible, 1);
    assert_eq!(stats.diverged, 0);
}
