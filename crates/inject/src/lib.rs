//! # cdsspec-inject
//!
//! The fault-injection framework behind the paper's §6.4.2 experiment
//! (Figure 8) and the §6.4.3 overly-strong-parameter search.
//!
//! An injection weakens exactly one memory-order parameter of one atomic
//! operation to its next-weaker value (`seq_cst → acq_rel`,
//! `acq_rel → release/acquire`, `acquire/release → relaxed`) and re-runs
//! the benchmark's standard unit test under the CDSSpec checker. The first
//! defect found classifies the detection:
//!
//! * **Built-in** — CDSChecker-style checks (data race, uninitialized
//!   load, deadlock, panic);
//! * **Admissibility** — the execution left required-ordered calls
//!   unordered;
//! * **Assertion** — a specification condition failed.
//!
//! ## Resilience
//!
//! A campaign is only useful if it finishes: one crashing trial must not
//! take the other several dozen rows down with it. Every `check` call is
//! therefore run under [`std::panic::catch_unwind`]; a panicking trial is
//! retried **once** at a reduced budget (a tenth of the execution cap,
//! half the time budget), and if the retry also dies the trial is
//! recorded as [`Trial::errored`] rather than aborting the campaign.
//! Trials whose exploration ended with [`mc::StopReason::Errored`] (a
//! specification plugin panicked and the checker contained it) are
//! classified the same way — an errored trial is *no verdict*, not an
//! assertion detection.
//!
//! ## Parallelism
//!
//! Campaigns dispatch their trials across [`mc::Config::workers`] OS
//! threads; each trial's own exploration is forced to the sequential
//! engine, so the parallelism budget is spent *across* trials (which are
//! fully independent) rather than nested inside them. Results come back
//! in site order at every worker count — a parallel campaign's rows are
//! identical to a sequential one's.

#![warn(missing_docs)]

use cdsspec_mc as mc;
use cdsspec_structures::registry::Benchmark;
use cdsspec_structures::Ords;

use cdsspec_c11::MemOrd;
use mc::BugCategory;

/// Outcome of one single-site injection trial.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Weakened site name.
    pub site: &'static str,
    /// Ordering before weakening.
    pub from: MemOrd,
    /// Ordering after weakening.
    pub to: MemOrd,
    /// First detection category, or `None` if the weakened structure
    /// passed every check.
    pub detected: Option<BugCategory>,
    /// First bug message (diagnostics).
    pub message: Option<String>,
    /// Executions explored in the trial.
    pub executions: u64,
    /// Branches suppressed by rf-equivalence pruning during the trial.
    pub executions_pruned: u64,
    /// Distinct reads-from equivalence classes among the trial's
    /// completed executions.
    pub rf_classes: u64,
    /// Wall-clock of the trial's exploration, in nanoseconds.
    pub elapsed_ns: u128,
    /// Deepest DFS frontier the trial's exploration reached.
    pub peak_depth: u64,
    /// The trial produced no usable verdict: the benchmark's `check`
    /// panicked twice (initial attempt plus the reduced-budget retry) or
    /// the exploration stopped with [`mc::StopReason::Errored`].
    pub errored: bool,
}

/// Per-benchmark aggregate (one Figure 8 row).
#[derive(Clone, Debug, Default)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of injections performed.
    pub injections: usize,
    /// Detected by built-in checks.
    pub builtin: usize,
    /// Detected as admissibility failures.
    pub admissibility: usize,
    /// Detected as specification (assertion) violations.
    pub assertion: usize,
    /// Trials with no usable verdict (see [`Trial::errored`]).
    pub errored: usize,
}

impl Row {
    /// Total detections. Errored trials are not detections.
    pub fn detected(&self) -> usize {
        self.builtin + self.admissibility + self.assertion
    }

    /// Detection rate in percent (100 when nothing was injectable).
    /// Errored trials count against the rate: a trial we could not judge
    /// is conservatively reported as a miss.
    pub fn rate(&self) -> f64 {
        if self.injections == 0 {
            100.0
        } else {
            100.0 * self.detected() as f64 / self.injections as f64
        }
    }
}

/// Render a panic payload for diagnostics.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one trial's `check` under panic containment.
///
/// A panicking attempt gets exactly one retry at a reduced budget — a
/// tenth of the execution cap and half the wall-clock budget — on the
/// theory that crashes in modeled code often depend on how deep the
/// exploration gets. If both attempts die, a synthetic
/// [`mc::StopReason::Errored`] result is returned so the campaign keeps
/// its row. The second tuple element carries panic diagnostics, if any.
fn run_guarded(bench: &Benchmark, config: &mc::Config, ords: &Ords) -> (mc::Stats, Option<String>) {
    let attempt = |cfg: mc::Config| {
        let ords = ords.clone();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (bench.check)(cfg, ords)))
    };
    match attempt(config.clone()) {
        Ok(stats) => (stats, None),
        Err(payload) => {
            let first = panic_text(payload.as_ref());
            let reduced = mc::Config {
                max_executions: (config.max_executions / 10).max(1),
                time_budget: config.time_budget.map(|d| d / 2),
                ..config.clone()
            };
            match attempt(reduced) {
                Ok(stats) => {
                    let note =
                        format!("check panicked, retry at reduced budget succeeded: {first}");
                    (stats, Some(note))
                }
                Err(second) => {
                    let stats = mc::Stats {
                        stop: mc::StopReason::Errored,
                        ..mc::Stats::default()
                    };
                    let note = format!(
                        "check panicked twice: {first}; retry: {}",
                        panic_text(second.as_ref())
                    );
                    (stats, Some(note))
                }
            }
        }
    }
}

/// Run one single-site trial: apply `weaken` to a fresh default ordering
/// set, check under panic containment, and classify the first defect.
/// Returns `None` when `weaken` declines the site (nothing to inject).
fn run_trial(
    bench: &Benchmark,
    config: &mc::Config,
    site_idx: usize,
    weaken: impl Fn(&mut Ords, usize) -> bool,
) -> Option<Trial> {
    let mut ords = Ords::defaults(bench.sites);
    let from = ords.get(site_idx);
    if !weaken(&mut ords, site_idx) {
        return None;
    }
    let to = ords.get(site_idx);
    let (stats, note) = run_guarded(bench, config, &ords);
    let errored = stats.stop == mc::StopReason::Errored;
    let detected = if errored {
        None
    } else {
        stats.bugs.first().map(|b| b.bug.category())
    };
    let bug_message = stats.bugs.first().map(|b| b.bug.to_string());
    let message = if errored {
        note.or(bug_message)
    } else {
        bug_message.or(note)
    };
    Some(Trial {
        benchmark: bench.name,
        site: bench.sites[site_idx].name,
        from,
        to,
        detected,
        message,
        executions: stats.executions,
        executions_pruned: stats.executions_pruned,
        rf_classes: stats.rf_classes.len() as u64,
        elapsed_ns: stats.elapsed.as_nanos(),
        peak_depth: stats.peak_depth,
        errored,
    })
}

/// Dispatch one trial per injectable site across `Config::workers` OS
/// threads and return the outcomes **in site order**, independent of
/// thread timing. Each trial's own exploration is forced sequential
/// (`workers: 1`) — the parallelism budget is spent across trials, not
/// nested inside them, which keeps thread count bounded and keeps every
/// individual trial's statistics identical to a sequential campaign's.
fn dispatch_trials(
    bench: &Benchmark,
    config: &mc::Config,
    weaken: impl Fn(&mut Ords, usize) -> bool + Sync,
) -> Vec<Trial> {
    let sites = bench.default_ords().injectable_sites();
    let trial_config = mc::Config {
        workers: 1,
        ..config.clone()
    };
    let workers = config.effective_workers().min(sites.len().max(1));
    if workers <= 1 {
        return sites
            .iter()
            .filter_map(|&i| run_trial(bench, &trial_config, i, &weaken))
            .collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let done: Vec<std::sync::Mutex<Option<Option<Trial>>>> =
        sites.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (cursor, done, sites) = (&cursor, &done, &sites);
            let (trial_config, weaken) = (&trial_config, &weaken);
            std::thread::Builder::new()
                .name(format!("cdsspec-inject-{w}"))
                .spawn_scoped(scope, move || loop {
                    let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&site_idx) = sites.get(k) else { break };
                    let t = run_trial(bench, trial_config, site_idx, weaken);
                    *done[k].lock().unwrap() = Some(t);
                })
                .expect("spawn trial thread");
        }
    });
    done.into_iter()
        .filter_map(|slot| slot.into_inner().unwrap().flatten())
        .collect()
}

/// Run the full one-step-weakening campaign against one benchmark,
/// trials dispatched across [`mc::Config::workers`] threads.
///
/// Never panics out of a trial: see the module-level *Resilience* notes.
/// The returned row always covers every injectable site, in site order,
/// at every worker count.
pub fn inject_benchmark(bench: &Benchmark, config: &mc::Config) -> (Row, Vec<Trial>) {
    let trials = dispatch_trials(bench, config, |ords, i| ords.weaken(i));
    let mut row = Row {
        name: bench.name,
        injections: trials.len(),
        ..Row::default()
    };
    for t in &trials {
        if t.errored {
            row.errored += 1;
        } else {
            match t.detected {
                Some(BugCategory::BuiltIn) | Some(BugCategory::Internal) => row.builtin += 1,
                Some(BugCategory::Admissibility) => row.admissibility += 1,
                Some(BugCategory::Assertion) => row.assertion += 1,
                None => {}
            }
        }
    }
    (row, trials)
}

/// Run the campaign over a benchmark suite.
pub fn run_campaign(benchmarks: &[Benchmark], config: &mc::Config) -> Vec<(Row, Vec<Trial>)> {
    benchmarks
        .iter()
        .map(|b| inject_benchmark(b, config))
        .collect()
}

/// §6.4.3: drop each non-relaxed site of a benchmark all the way to
/// `relaxed` and report the sites that trigger **no** violation — the
/// candidates for overly strong memory-order parameters.
///
/// Errored trials are **not** survivors: a crashed check is no evidence
/// that the site tolerates `relaxed`. Trials run across
/// [`mc::Config::workers`] threads like [`inject_benchmark`]'s.
pub fn find_overly_strong(bench: &Benchmark, config: &mc::Config) -> Vec<Trial> {
    dispatch_trials(bench, config, |ords, i| {
        ords.set(i, MemOrd::Relaxed);
        true
    })
    .into_iter()
    .filter(|t| !t.errored && t.detected.is_none())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsspec_structures::registry::benchmarks;

    fn quick_config() -> mc::Config {
        let cap = if cfg!(debug_assertions) {
            15_000
        } else {
            30_000
        };
        mc::Config {
            max_executions: cap,
            ..mc::Config::default()
        }
    }

    #[test]
    fn row_arithmetic() {
        let row = Row {
            name: "x",
            injections: 5,
            builtin: 1,
            admissibility: 1,
            assertion: 1,
            errored: 1,
        };
        assert_eq!(row.detected(), 3, "errored trials are not detections");
        assert!(
            (row.rate() - 60.0).abs() < 1e-9,
            "errored trials count against the rate"
        );
        assert_eq!(Row::default().rate(), 100.0);
    }

    /// The ticket lock has exactly two injectable sites and both
    /// injections must be caught (the paper's 2/2 row).
    #[test]
    fn ticket_lock_row_matches_paper_shape() {
        let bench = benchmarks()
            .into_iter()
            .find(|b| b.name == "Ticket Lock")
            .unwrap();
        let (row, trials) = inject_benchmark(&bench, &quick_config());
        assert_eq!(row.injections, 2, "{trials:?}");
        assert_eq!(row.detected(), 2, "{trials:?}");
    }

    /// RCU's injections are all caught by built-in checks (the paper's
    /// 3/3-built-in row shape).
    #[test]
    fn rcu_detections_are_builtin() {
        let bench = benchmarks().into_iter().find(|b| b.name == "RCU").unwrap();
        let (row, trials) = inject_benchmark(&bench, &quick_config());
        assert!(row.injections >= 2);
        assert_eq!(row.detected(), row.injections, "{trials:?}");
        assert_eq!(
            row.builtin,
            row.detected(),
            "all RCU detections are built-in: {trials:?}"
        );
    }

    /// A campaign dispatched across threads reports exactly the rows and
    /// trial order of a sequential one.
    #[test]
    fn parallel_campaign_matches_sequential() {
        let bench = benchmarks()
            .into_iter()
            .find(|b| b.name == "Ticket Lock")
            .unwrap();
        let seq = inject_benchmark(&bench, &quick_config());
        let par = inject_benchmark(
            &bench,
            &mc::Config {
                workers: 2,
                ..quick_config()
            },
        );
        assert_eq!(seq.0.injections, par.0.injections);
        assert_eq!(seq.0.builtin, par.0.builtin);
        assert_eq!(seq.0.admissibility, par.0.admissibility);
        assert_eq!(seq.0.assertion, par.0.assertion);
        assert_eq!(seq.0.errored, par.0.errored);
        let sites = |trials: &[Trial]| trials.iter().map(|t| t.site).collect::<Vec<_>>();
        assert_eq!(sites(&seq.1), sites(&par.1), "trial order is site order");
    }

    /// The Chase-Lev top CAS survives full weakening (the §6.4.3 finding).
    #[test]
    fn chase_lev_has_an_overly_strong_cas() {
        let bench = benchmarks()
            .into_iter()
            .find(|b| b.name == "Chase-Lev Deque")
            .unwrap();
        let survivors = find_overly_strong(&bench, &quick_config());
        assert!(
            survivors.iter().any(|t| t.site.contains("top_cas")),
            "expected a top CAS to survive weakening; survivors: {:?}",
            survivors.iter().map(|t| t.site).collect::<Vec<_>>()
        );
    }
}
