//! # cdsspec-inject
//!
//! The fault-injection framework behind the paper's §6.4.2 experiment
//! (Figure 8) and the §6.4.3 overly-strong-parameter search.
//!
//! An injection weakens exactly one memory-order parameter of one atomic
//! operation to its next-weaker value (`seq_cst → acq_rel`,
//! `acq_rel → release/acquire`, `acquire/release → relaxed`) and re-runs
//! the benchmark's standard unit test under the CDSSpec checker. The first
//! defect found classifies the detection:
//!
//! * **Built-in** — CDSChecker-style checks (data race, uninitialized
//!   load, deadlock, panic);
//! * **Admissibility** — the execution left required-ordered calls
//!   unordered;
//! * **Assertion** — a specification condition failed.
//!
//! ## Resilience
//!
//! A campaign is only useful if it finishes: one crashing trial must not
//! take the other several dozen rows down with it. Every `check` call is
//! therefore run under [`std::panic::catch_unwind`]; a panicking trial is
//! retried **once** at a reduced budget (a tenth of the execution cap,
//! half the time budget), and if the retry also dies the trial is
//! recorded as [`Trial::errored`] rather than aborting the campaign.
//! Trials whose exploration ended with [`mc::StopReason::Errored`] (a
//! specification plugin panicked and the checker contained it) are
//! classified the same way — an errored trial is *no verdict*, not an
//! assertion detection.

use cdsspec_mc as mc;
use cdsspec_structures::registry::Benchmark;
use cdsspec_structures::Ords;

use cdsspec_c11::MemOrd;
use mc::BugCategory;

/// Outcome of one single-site injection trial.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Weakened site name.
    pub site: &'static str,
    /// Ordering before weakening.
    pub from: MemOrd,
    /// Ordering after weakening.
    pub to: MemOrd,
    /// First detection category, or `None` if the weakened structure
    /// passed every check.
    pub detected: Option<BugCategory>,
    /// First bug message (diagnostics).
    pub message: Option<String>,
    /// Executions explored in the trial.
    pub executions: u64,
    /// The trial produced no usable verdict: the benchmark's `check`
    /// panicked twice (initial attempt plus the reduced-budget retry) or
    /// the exploration stopped with [`mc::StopReason::Errored`].
    pub errored: bool,
}

/// Per-benchmark aggregate (one Figure 8 row).
#[derive(Clone, Debug, Default)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of injections performed.
    pub injections: usize,
    /// Detected by built-in checks.
    pub builtin: usize,
    /// Detected as admissibility failures.
    pub admissibility: usize,
    /// Detected as specification (assertion) violations.
    pub assertion: usize,
    /// Trials with no usable verdict (see [`Trial::errored`]).
    pub errored: usize,
}

impl Row {
    /// Total detections. Errored trials are not detections.
    pub fn detected(&self) -> usize {
        self.builtin + self.admissibility + self.assertion
    }

    /// Detection rate in percent (100 when nothing was injectable).
    /// Errored trials count against the rate: a trial we could not judge
    /// is conservatively reported as a miss.
    pub fn rate(&self) -> f64 {
        if self.injections == 0 {
            100.0
        } else {
            100.0 * self.detected() as f64 / self.injections as f64
        }
    }
}

/// Render a panic payload for diagnostics.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one trial's `check` under panic containment.
///
/// A panicking attempt gets exactly one retry at a reduced budget — a
/// tenth of the execution cap and half the wall-clock budget — on the
/// theory that crashes in modeled code often depend on how deep the
/// exploration gets. If both attempts die, a synthetic
/// [`mc::StopReason::Errored`] result is returned so the campaign keeps
/// its row. The second tuple element carries panic diagnostics, if any.
fn run_guarded(bench: &Benchmark, config: &mc::Config, ords: &Ords) -> (mc::Stats, Option<String>) {
    let attempt = |cfg: mc::Config| {
        let ords = ords.clone();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (bench.check)(cfg, ords)))
    };
    match attempt(config.clone()) {
        Ok(stats) => (stats, None),
        Err(payload) => {
            let first = panic_text(payload.as_ref());
            let reduced = mc::Config {
                max_executions: (config.max_executions / 10).max(1),
                time_budget: config.time_budget.map(|d| d / 2),
                ..config.clone()
            };
            match attempt(reduced) {
                Ok(stats) => {
                    let note =
                        format!("check panicked, retry at reduced budget succeeded: {first}");
                    (stats, Some(note))
                }
                Err(second) => {
                    let stats = mc::Stats {
                        stop: mc::StopReason::Errored,
                        ..mc::Stats::default()
                    };
                    let note = format!(
                        "check panicked twice: {first}; retry: {}",
                        panic_text(second.as_ref())
                    );
                    (stats, Some(note))
                }
            }
        }
    }
}

/// Run the full one-step-weakening campaign against one benchmark.
///
/// Never panics out of a trial: see the module-level *Resilience* notes.
/// The returned row always covers every injectable site.
pub fn inject_benchmark(bench: &Benchmark, config: &mc::Config) -> (Row, Vec<Trial>) {
    let mut row = Row {
        name: bench.name,
        ..Row::default()
    };
    let mut trials = Vec::new();
    let base = bench.default_ords();
    for site_idx in base.injectable_sites() {
        let mut ords = Ords::defaults(bench.sites);
        let from = ords.get(site_idx);
        if !ords.weaken(site_idx) {
            continue;
        }
        let to = ords.get(site_idx);
        row.injections += 1;
        let (stats, note) = run_guarded(bench, config, &ords);
        let errored = stats.stop == mc::StopReason::Errored;
        let detected = if errored {
            None
        } else {
            stats.bugs.first().map(|b| b.bug.category())
        };
        if errored {
            row.errored += 1;
        } else {
            match detected {
                Some(BugCategory::BuiltIn) | Some(BugCategory::Internal) => row.builtin += 1,
                Some(BugCategory::Admissibility) => row.admissibility += 1,
                Some(BugCategory::Assertion) => row.assertion += 1,
                None => {}
            }
        }
        let bug_message = stats.bugs.first().map(|b| b.bug.to_string());
        let message = if errored {
            note.or(bug_message)
        } else {
            bug_message.or(note)
        };
        trials.push(Trial {
            benchmark: bench.name,
            site: bench.sites[site_idx].name,
            from,
            to,
            detected,
            message,
            executions: stats.executions,
            errored,
        });
    }
    (row, trials)
}

/// Run the campaign over a benchmark suite.
pub fn run_campaign(benchmarks: &[Benchmark], config: &mc::Config) -> Vec<(Row, Vec<Trial>)> {
    benchmarks
        .iter()
        .map(|b| inject_benchmark(b, config))
        .collect()
}

/// §6.4.3: drop each non-relaxed site of a benchmark all the way to
/// `relaxed` and report the sites that trigger **no** violation — the
/// candidates for overly strong memory-order parameters.
///
/// Errored trials are **not** survivors: a crashed check is no evidence
/// that the site tolerates `relaxed`.
pub fn find_overly_strong(bench: &Benchmark, config: &mc::Config) -> Vec<Trial> {
    let mut survivors = Vec::new();
    let base = bench.default_ords();
    for site_idx in base.injectable_sites() {
        let mut ords = Ords::defaults(bench.sites);
        let from = ords.get(site_idx);
        ords.set(site_idx, MemOrd::Relaxed);
        let (stats, note) = run_guarded(bench, config, &ords);
        if stats.stop == mc::StopReason::Errored {
            continue;
        }
        if !stats.buggy() {
            survivors.push(Trial {
                benchmark: bench.name,
                site: bench.sites[site_idx].name,
                from,
                to: MemOrd::Relaxed,
                detected: None,
                message: note,
                executions: stats.executions,
                errored: false,
            });
        }
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsspec_structures::registry::benchmarks;

    fn quick_config() -> mc::Config {
        let cap = if cfg!(debug_assertions) {
            15_000
        } else {
            30_000
        };
        mc::Config {
            max_executions: cap,
            ..mc::Config::default()
        }
    }

    #[test]
    fn row_arithmetic() {
        let row = Row {
            name: "x",
            injections: 5,
            builtin: 1,
            admissibility: 1,
            assertion: 1,
            errored: 1,
        };
        assert_eq!(row.detected(), 3, "errored trials are not detections");
        assert!(
            (row.rate() - 60.0).abs() < 1e-9,
            "errored trials count against the rate"
        );
        assert_eq!(Row::default().rate(), 100.0);
    }

    /// The ticket lock has exactly two injectable sites and both
    /// injections must be caught (the paper's 2/2 row).
    #[test]
    fn ticket_lock_row_matches_paper_shape() {
        let bench = benchmarks()
            .into_iter()
            .find(|b| b.name == "Ticket Lock")
            .unwrap();
        let (row, trials) = inject_benchmark(&bench, &quick_config());
        assert_eq!(row.injections, 2, "{trials:?}");
        assert_eq!(row.detected(), 2, "{trials:?}");
    }

    /// RCU's injections are all caught by built-in checks (the paper's
    /// 3/3-built-in row shape).
    #[test]
    fn rcu_detections_are_builtin() {
        let bench = benchmarks().into_iter().find(|b| b.name == "RCU").unwrap();
        let (row, trials) = inject_benchmark(&bench, &quick_config());
        assert!(row.injections >= 2);
        assert_eq!(row.detected(), row.injections, "{trials:?}");
        assert_eq!(
            row.builtin,
            row.detected(),
            "all RCU detections are built-in: {trials:?}"
        );
    }

    /// The Chase-Lev top CAS survives full weakening (the §6.4.3 finding).
    #[test]
    fn chase_lev_has_an_overly_strong_cas() {
        let bench = benchmarks()
            .into_iter()
            .find(|b| b.name == "Chase-Lev Deque")
            .unwrap();
        let survivors = find_overly_strong(&bench, &quick_config());
        assert!(
            survivors.iter().any(|t| t.site.contains("top_cas")),
            "expected a top CAS to survive weakening; survivors: {:?}",
            survivors.iter().map(|t| t.site).collect::<Vec<_>>()
        );
    }
}
