//! Campaign resilience: a crashing or flaky benchmark `check` must never
//! cost the campaign its other rows. These tests stub registry entries
//! with hostile closures and assert the Figure 8 row set stays complete.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use cdsspec_c11::MemOrd;
use cdsspec_inject as inject;
use cdsspec_mc as mc;
use cdsspec_structures::ords::{site, Ords, SiteKind, SiteSpec};
use cdsspec_structures::registry::{benchmarks, Benchmark, SpecMeta};

fn tiny_config() -> mc::Config {
    // Detection power is irrelevant here — these tests are about row
    // completeness, so keep each trial cheap.
    mc::Config {
        max_executions: 500,
        ..mc::Config::default()
    }
}

fn stub_meta() -> SpecMeta {
    SpecMeta {
        methods: 0,
        admissibility_rules: 0,
        ordering_point_annotations: 0,
    }
}

fn panicking_check(_config: mc::Config, _ords: Ords) -> mc::Stats {
    panic!("stub: simulated checker crash");
}

/// The ISSUE acceptance criterion: `run_campaign` over all registry
/// benchmarks completes and reports every row even when one benchmark's
/// `check` closure is replaced by a panicking stub.
#[test]
fn campaign_completes_every_row_with_panicking_stub() {
    let mut benches = benchmarks();
    let victim = benches
        .iter()
        .position(|b| b.name == "Ticket Lock")
        .unwrap();
    benches[victim].check = panicking_check;

    let rows = inject::run_campaign(&benches, &tiny_config());

    assert_eq!(
        rows.len(),
        benches.len(),
        "every benchmark must keep its row"
    );
    for (bench, (row, trials)) in benches.iter().zip(&rows) {
        assert_eq!(row.name, bench.name);
        assert_eq!(row.injections, trials.len());
        assert!(row.injections > 0, "{}: nothing injected", row.name);
    }

    let (row, trials) = &rows[victim];
    assert_eq!(
        row.errored, row.injections,
        "every stubbed trial errors: {trials:?}"
    );
    assert_eq!(row.detected(), 0, "errored trials are not detections");
    assert!(trials.iter().all(|t| t.errored));
    let msg = trials[0]
        .message
        .as_deref()
        .expect("errored trials carry diagnostics");
    assert!(
        msg.contains("panicked twice"),
        "message explains the double panic: {msg}"
    );
    assert!(
        msg.contains("simulated checker crash"),
        "payload text survives: {msg}"
    );
}

static FLAKY_CALLS: AtomicUsize = AtomicUsize::new(0);
static RETRY_CAP: AtomicU64 = AtomicU64::new(0);
static FLAKY_SITES: &[SiteSpec] = &[site("probe.load", MemOrd::SeqCst, SiteKind::Load)];

/// Panics on every first attempt; the retry succeeds and records the
/// budget it was given.
fn flaky_check(config: mc::Config, _ords: Ords) -> mc::Stats {
    if FLAKY_CALLS.fetch_add(1, Ordering::SeqCst).is_multiple_of(2) {
        panic!("transient failure");
    }
    RETRY_CAP.store(config.max_executions, Ordering::SeqCst);
    mc::explore(config, || {})
}

/// A single panic gets one retry at a tenth of the execution budget; a
/// successful retry yields a normal (non-errored) trial.
#[test]
fn transient_panic_is_retried_at_reduced_budget() {
    let bench = Benchmark {
        name: "Flaky",
        sites: FLAKY_SITES,
        check: flaky_check,
        meta: stub_meta(),
    };
    let config = mc::Config {
        max_executions: 1_000,
        ..mc::Config::default()
    };
    let (row, trials) = inject::inject_benchmark(&bench, &config);

    assert_eq!(row.injections, 1);
    assert_eq!(
        row.errored, 0,
        "a successful retry is a usable verdict: {trials:?}"
    );
    assert!(!trials[0].errored);
    assert_eq!(
        RETRY_CAP.load(Ordering::SeqCst),
        100,
        "retry runs at a tenth of the cap"
    );
    let msg = trials[0]
        .message
        .as_deref()
        .expect("retry leaves a diagnostic note");
    assert!(msg.contains("retry at reduced budget succeeded"), "{msg}");
}

static BOMB_SITES: &[SiteSpec] = &[site("bomb.store", MemOrd::SeqCst, SiteKind::Store)];

/// Ends with `StopReason::Errored` through the checker's own plugin
/// containment (the panic happens *inside* exploration and is caught
/// there, not by the campaign's `catch_unwind`).
fn plugin_bomb_check(config: mc::Config, _ords: Ords) -> mc::Stats {
    let bomb = mc::FnPlugin::new("bomb", |_trace| -> Vec<mc::Bug> { panic!("plugin bomb") });
    mc::explore_with_plugins(config, vec![Box::new(bomb)], || {
        let x = mc::Atomic::new(0i64);
        let _ = x.load(mc::MemOrd::Relaxed);
    })
}

/// A contained plugin panic (`StopReason::Errored`) classifies as an
/// errored trial, not as an assertion detection.
#[test]
fn contained_plugin_panic_classifies_as_errored() {
    let bench = Benchmark {
        name: "Plugin Bomb",
        sites: BOMB_SITES,
        check: plugin_bomb_check,
        meta: stub_meta(),
    };
    let (row, trials) = inject::inject_benchmark(&bench, &tiny_config());

    assert_eq!(row.injections, 1);
    assert_eq!(row.errored, 1, "{trials:?}");
    assert_eq!(
        row.assertion, 0,
        "a contained panic must not read as a spec violation"
    );
    assert!(trials[0].errored);
    assert!(trials[0].detected.is_none());
    let msg = trials[0]
        .message
        .as_deref()
        .expect("diagnostics for the contained panic");
    assert!(msg.contains("panicked"), "{msg}");
}

/// A crashed check is no evidence of an overly strong parameter: the
/// §6.4.3 search reports no survivors for an always-panicking benchmark.
#[test]
fn overly_strong_search_skips_errored_sites() {
    let mut bench = benchmarks()
        .into_iter()
        .find(|b| b.name == "Ticket Lock")
        .unwrap();
    bench.check = panicking_check;
    let survivors = inject::find_overly_strong(&bench, &tiny_config());
    assert!(
        survivors.is_empty(),
        "crashes must not look like survivors: {survivors:?}"
    );
}
