//! Property tests for the networked wire: arbitrary supervisor/worker
//! protocol messages survive encode → frame → arbitrary re-chunking →
//! decode **identically**, and corrupted or truncated frames are always
//! rejected as a framing error (worker death at the transport layer) —
//! never silently misparsed into a different message.
//!
//! The framing under test is `crates/campaign/src/net.rs`:
//! `[len: u32 BE][crc32(payload): u32 BE][payload]`. The CRC covers the
//! payload, so any payload flip is caught directly; header flips either
//! desynchronize the length (truncated/oversize ⇒ `Corrupt`) or corrupt
//! the stored CRC (mismatch ⇒ `Corrupt`). These tests pin that argument
//! against real random damage rather than trusting it.

use cdsspec_campaign::net::{frame_bytes, read_frame, FrameSplitter};
use cdsspec_campaign::proto::{FromWorker, ToWorker};
use cdsspec_mc::{Bug, BugCategory, Config, FoundBug, ShardSpec, Stats, StopReason};
use proptest::prelude::*;
use std::io::Cursor;
use std::time::Duration;

/// Strings chosen to stress the JSON escaper inside the framed payload:
/// quotes, newlines, backslashes, unicode, emptiness.
const STRINGS: &[&str] = &[
    "SPSC Queue",
    "assertion \"front == expected\" failed",
    "two\nlines and a tab\t",
    "unicode θ≤π, backslash \\",
    "",
];

fn string_strategy() -> impl Strategy<Value = String> {
    (0usize..STRINGS.len()).prop_map(|i| STRINGS[i].to_string())
}

fn shard_strategy() -> impl Strategy<Value = ShardSpec> {
    (0usize..6, prop::collection::vec(0usize..9, 0..6))
        .prop_map(|(floor, script)| ShardSpec { floor, script })
}

/// Semantic-config strategy. Only the wire-carried subset is varied: the
/// encoder deliberately drops hosting knobs (`workers`, `fiber_stack`,
/// ...), so varying them would make "decode equals original" vacuously
/// false for reasons unrelated to framing.
fn config_strategy() -> impl Strategy<Value = Config> {
    (
        (100u32..5000, 0u32..10, 0u32..10, 1u64..1 << 40),
        prop::option::of(1u64..1 << 40),
        prop::option::of(1u64..1 << 40),
        (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()),
        0u64..u64::MAX,
    )
        .prop_map(
            |(
                (max_steps_per_thread, max_spins, max_futile_reads, max_executions),
                time_budget_ns,
                hang_timeout_ns,
                (sleep_sets, rf_prune, stop_on_first_bug, debug_audit),
                sample_seed,
            )| Config {
                max_steps_per_thread,
                max_spins,
                max_futile_reads,
                max_executions,
                time_budget: time_budget_ns.map(Duration::from_nanos),
                hang_timeout: hang_timeout_ns.map(Duration::from_nanos),
                sample_seed,
                sleep_sets,
                rf_prune,
                stop_on_first_bug,
                debug_audit,
                ..Config::default()
            },
        )
}

fn bug_strategy() -> impl Strategy<Value = FoundBug> {
    (
        0usize..4,
        string_strategy(),
        0u64..10_000,
        0usize..4,
        prop::collection::vec(0usize..6, 0..4),
    )
        .prop_map(|(cat, message, execution, worker, shard)| FoundBug {
            bug: Bug::Restored {
                category: match cat {
                    0 => BugCategory::BuiltIn,
                    1 => BugCategory::Admissibility,
                    2 => BugCategory::Assertion,
                    _ => BugCategory::Internal,
                },
                message,
            },
            execution,
            trace: String::new(),
            worker,
            shard,
        })
}

fn stats_strategy() -> impl Strategy<Value = Stats> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 20),
        (0u64..1 << 20, 0u64..200, 0u64..u64::MAX / 4),
        0usize..5,
        prop::collection::vec(bug_strategy(), 0..3),
        prop::collection::vec(shard_strategy(), 0..3),
    )
        .prop_map(
            |(
                (executions, feasible, diverged, sleep_pruned),
                (sampled, peak_depth, elapsed_ns),
                stop_ix,
                bugs,
                shards,
            )| {
                let mut s = Stats {
                    executions,
                    feasible,
                    diverged,
                    sleep_pruned,
                    sampled,
                    peak_depth,
                    bugs,
                    elapsed: Duration::from_nanos(elapsed_ns),
                    stop: match stop_ix {
                        0 => StopReason::Exhausted,
                        1 => StopReason::FirstBug,
                        2 => StopReason::ExecutionCap,
                        3 => StopReason::Deadline,
                        _ => StopReason::Errored,
                    },
                    ..Stats::default()
                };
                s.set_frontier_shards(shards);
                s
            },
        )
}

fn to_worker_strategy() -> impl Strategy<Value = ToWorker> {
    prop_oneof![
        (0usize..1).prop_map(|_| ToWorker::Exit),
        (
            any::<u64>(),
            string_strategy(),
            shard_strategy(),
            config_strategy(),
            prop::collection::vec(0usize..12, 0..5),
        )
            .prop_map(|(task, bench, shard, config, weaken)| ToWorker::Run {
                task,
                bench,
                shard,
                config,
                weaken,
            }),
    ]
}

fn from_worker_strategy() -> impl Strategy<Value = FromWorker> {
    prop_oneof![
        (any::<u32>()).prop_map(|pid| FromWorker::Hello { pid }),
        (any::<u64>()).prop_map(|task| FromWorker::Heartbeat { task }),
        (any::<u64>(), stats_strategy())
            .prop_map(|(task, stats)| FromWorker::Result { task, stats }),
        (any::<u64>(), string_strategy())
            .prop_map(|(task, message)| FromWorker::Error { task, message }),
    ]
}

/// One encoded protocol line from either direction.
fn line_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        to_worker_strategy().prop_map(|m| m.encode()),
        from_worker_strategy().prop_map(|m| m.encode()),
    ]
}

/// Split `bytes` into consecutive chunks whose sizes cycle through
/// `sizes` (1-byte chunks when empty).
fn chunked<'a>(bytes: &'a [u8], sizes: &'a [usize]) -> Vec<&'a [u8]> {
    let mut out = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < bytes.len() {
        let want = if sizes.is_empty() {
            1
        } else {
            sizes[i % sizes.len()].max(1)
        };
        let end = (at + want).min(bytes.len());
        out.push(&bytes[at..end]);
        at = end;
        i += 1;
    }
    out
}

proptest! {
    /// encode → frame → arbitrary re-chunking → decode is the identity,
    /// for any protocol message in either direction. Decoding is pinned
    /// by the encode-fixpoint: the re-decoded message re-encodes to the
    /// byte-identical line, so no field was lost or altered in transit.
    #[test]
    fn any_message_survives_framing_and_rechunking(
        line in line_strategy(),
        sizes in prop::collection::vec(1usize..64, 0..8),
    ) {
        let bytes = frame_bytes(&line);
        let mut splitter = FrameSplitter::new();
        let mut got = Vec::new();
        for chunk in chunked(&bytes, &sizes) {
            splitter.push(chunk);
            while let Some(out) = splitter.next_frame().expect("clean frame") {
                got.push(out);
            }
        }
        prop_assert_eq!(got.len(), 1, "exactly one frame comes out");
        prop_assert_eq!(&got[0], &line, "payload survives verbatim");
        prop_assert_eq!(splitter.pending(), 0, "no residue after a whole frame");

        // The payload decodes back to a message that re-encodes to the
        // same line (works for both directions; try both decoders).
        let fixpoint = ToWorker::decode(&got[0]).map(|m| m.encode())
            .or_else(|_| FromWorker::decode(&got[0]).map(|m| m.encode()));
        prop_assert_eq!(fixpoint.as_deref(), Ok(line.as_str()));
    }

    /// A stream of several frames re-chunked arbitrarily comes out as
    /// exactly those payloads, in order.
    #[test]
    fn frame_streams_preserve_order(
        lines in prop::collection::vec(line_strategy(), 1..5),
        sizes in prop::collection::vec(1usize..48, 0..8),
    ) {
        let mut bytes = Vec::new();
        for line in &lines {
            bytes.extend_from_slice(&frame_bytes(line));
        }
        let mut splitter = FrameSplitter::new();
        let mut got = Vec::new();
        for chunk in chunked(&bytes, &sizes) {
            splitter.push(chunk);
            while let Some(out) = splitter.next_frame().expect("clean frames") {
                got.push(out);
            }
        }
        prop_assert_eq!(got, lines);
        prop_assert_eq!(splitter.pending(), 0);
    }

    /// Flip any single byte of a framed message: the reader must either
    /// reject the frame (worker death) or — never — hand back a payload
    /// different from the original. A flip can land in the length, the
    /// CRC, or the payload; all three must be caught.
    #[test]
    fn corrupted_frames_are_rejected_never_misparsed(
        line in line_strategy(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = frame_bytes(&line);
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        match read_frame(&mut Cursor::new(&bytes)) {
            Err(_) => {} // rejected: the supervisor treats this as death
            Ok(out) => prop_assert_eq!(
                out, line,
                "a corrupted frame decoded into a *different* payload"
            ),
        }
    }

    /// Truncate a framed message at any strictly-shorter length: the
    /// reader must reject it (clean close mid-frame is still death for
    /// the in-flight lease), never return a payload.
    #[test]
    fn truncated_frames_are_rejected(
        line in line_strategy(),
        cut_at in any::<usize>(),
    ) {
        let bytes = frame_bytes(&line);
        let cut = cut_at % bytes.len(); // 0..len, always a strict prefix
        let err = read_frame(&mut Cursor::new(&bytes[..cut]));
        prop_assert!(err.is_err(), "truncated frame must not parse: {err:?}");

        // The splitter view: a strict prefix never yields a frame.
        let mut splitter = FrameSplitter::new();
        splitter.push(&bytes[..cut]);
        loop {
            match splitter.next_frame() {
                Ok(None) => break,         // incomplete: waiting for the rest
                Err(_) => break,           // oversize/corrupt: rejected
                Ok(Some(out)) => prop_assert_eq!(
                    out, String::new(),
                    "a truncated frame must never yield a payload"
                ),
            }
        }
    }
}
