//! Property test for the result cache's core guarantee: a report served
//! from cache is **byte-identical** to the live report it was stored
//! from. The wire encoding ([`cdsspec_campaign::wire::stats_to_json`])
//! carries every field the campaign renders, so proving the round trip
//! preserves the encoding proves the rendered rows cannot differ.

use cdsspec_campaign::cache::{CacheKey, ResultCache};
use cdsspec_campaign::wire::stats_to_json;
use cdsspec_mc::{Bug, BugCategory, FoundBug, ShardSpec, Stats, StopReason};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

/// Messages chosen to stress the JSON escaper: quotes, newlines, tabs,
/// backslashes, unicode, emptiness.
const MESSAGES: &[&str] = &[
    "data race on d0: T0 and T1 unordered (read second access)",
    "assertion \"front == expected\" failed",
    "uninitialized load\nsecond line",
    "unicode θ≤π, backslash \\, tab \t",
    "",
];

fn category(ix: usize) -> BugCategory {
    match ix {
        0 => BugCategory::BuiltIn,
        1 => BugCategory::Admissibility,
        2 => BugCategory::Assertion,
        _ => BugCategory::Internal,
    }
}

fn stop(ix: usize) -> StopReason {
    match ix {
        0 => StopReason::Exhausted,
        1 => StopReason::FirstBug,
        2 => StopReason::ExecutionCap,
        3 => StopReason::Deadline,
        _ => StopReason::Errored,
    }
}

fn bug_strategy() -> impl Strategy<Value = FoundBug> {
    (
        0usize..4,
        0usize..MESSAGES.len(),
        0u64..10_000,
        0usize..4,
        prop::collection::vec(0usize..6, 0..4),
    )
        .prop_map(|(cat, msg, execution, worker, shard)| FoundBug {
            bug: Bug::Restored {
                category: category(cat),
                message: MESSAGES[msg].to_string(),
            },
            execution,
            // Traces are diagnostics, not report content; the wire drops
            // them by design.
            trace: String::new(),
            worker,
            shard,
        })
}

fn shard_strategy() -> impl Strategy<Value = ShardSpec> {
    (0usize..5, prop::collection::vec(0usize..8, 0..5))
        .prop_map(|(floor, script)| ShardSpec { floor, script })
}

fn stats_strategy() -> impl Strategy<Value = Stats> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 20),
        (0u64..1 << 20, 0u64..200, 0u64..u64::MAX / 4),
        0usize..5,
        prop::collection::vec(bug_strategy(), 0..4),
        prop::collection::vec(shard_strategy(), 0..4),
    )
        .prop_map(
            |(
                (executions, feasible, diverged, sleep_pruned),
                (sampled, peak_depth, elapsed_ns),
                stop_ix,
                bugs,
                shards,
            )| {
                let mut s = Stats {
                    executions,
                    feasible,
                    diverged,
                    sleep_pruned,
                    sampled,
                    peak_depth,
                    bugs,
                    elapsed: Duration::from_nanos(elapsed_ns),
                    stop: stop(stop_ix),
                    ..Stats::default()
                };
                s.set_frontier_shards(shards);
                s
            },
        )
}

fn cache_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdsspec-cache-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #[test]
    fn cached_report_is_byte_identical_to_the_live_one(
        stats in stats_strategy(),
        key_bits in (0u64..1 << 32, 0u64..1 << 32)
    ) {
        let cache = ResultCache::open(&cache_dir()).unwrap();
        let key = CacheKey {
            structure: format!("prop-bench-{}", key_bits.0),
            spec_hash: key_bits.0,
            config_hash: key_bits.1,
        };
        cache.store(&key, &stats).unwrap();
        let cached = cache.lookup(&key).expect("fresh entry hits");
        prop_assert_eq!(
            stats_to_json(&cached).encode(),
            stats_to_json(&stats).encode(),
            "cache round trip must preserve every rendered byte"
        );
    }
}
