//! End-to-end fault-injection tests for the `cdsspec-campaign` binary.
//!
//! Every test here drives the real binary (`CARGO_BIN_EXE_cdsspec-campaign`)
//! through a full campaign and asserts the tentpole guarantee: **no fault —
//! chaos kill, external `kill -9`, poison shard, supervisor halt, journal
//! corruption — changes a single byte of the merged report** (under
//! `--stable`, which masks the wall-clock column), and every failure mode
//! maps to its documented exit code.
//!
//! Benchmark choice matters for wall-clock: `SPSC Queue`, `RCU` and
//! `Seqlock` exhaust in well under a second even in debug builds, while
//! `MPMC Queue` runs for a couple of seconds — long enough to reliably
//! `kill -9` a worker mid-shard. (Chase-Lev Deque takes minutes in debug
//! and must never appear here.)

use cdsspec_campaign::{EXIT_BUG, EXIT_CLEAN, EXIT_ERROR, EXIT_RESUMABLE};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_cdsspec-campaign");

/// Benchmarks that exhaust quickly in debug builds.
const FAST: &str = "SPSC Queue,RCU,Seqlock";

fn campaign(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn cdsspec-campaign")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("campaign exited via exit code")
}

/// Parse the `campaign-summary: k=v k=v ...` stderr line into pairs.
fn summary(err: &str) -> Vec<(String, String)> {
    let line = err
        .lines()
        .find(|l| l.starts_with("campaign-summary:"))
        .unwrap_or_else(|| panic!("no campaign-summary line in stderr:\n{err}"));
    line.trim_start_matches("campaign-summary:")
        .split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn field(err: &str, key: &str) -> String {
    summary(err)
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("no {key} in summary:\n{err}"))
}

fn field_u64(err: &str, key: &str) -> u64 {
    field(err, key).parse().unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cdsspec-campaign-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pids of live `--worker-mode` children of `parent` (via /proc).
fn worker_pids(parent: u32) -> Vec<u32> {
    let mut pids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return pids;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // The comm field may contain anything; the ppid is the 2nd field
        // after the closing paren.
        let Some((_, rest)) = stat.rsplit_once(')') else {
            continue;
        };
        let mut fields = rest.split_whitespace();
        let _state = fields.next();
        let Some(ppid) = fields.next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if ppid != parent {
            continue;
        }
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if String::from_utf8_lossy(&cmdline).contains("--worker-mode") {
            pids.push(pid);
        }
    }
    pids
}

#[test]
fn chaos_kills_do_not_change_a_single_output_byte() {
    let base = campaign(&["--bench", FAST, "--stable", "--in-process", "--split", "20"]);
    assert_eq!(
        code(&base),
        EXIT_CLEAN,
        "baseline failed:\n{}",
        stderr(&base)
    );

    let chaos = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--split",
        "20",
        "--workers",
        "2",
        "--chaos-kill-pct",
        "100",
        "--chaos-seed",
        "7",
    ]);
    assert_eq!(
        code(&chaos),
        EXIT_CLEAN,
        "chaos run failed:\n{}",
        stderr(&chaos)
    );
    assert_eq!(
        stdout(&base),
        stdout(&chaos),
        "a chaos-ridden campaign must render the exact bytes of an undisturbed one"
    );
    let err = stderr(&chaos);
    assert!(
        field_u64(&err, "chaos_kills") > 0,
        "chaos never fired:\n{err}"
    );
    assert!(field_u64(&err, "worker_deaths") > 0);
    assert_eq!(field(&err, "suspects"), "0", "chaos must never quarantine");
}

#[test]
fn kill_dash_nine_mid_campaign_is_invisible_in_the_report() {
    let base = campaign(&["--bench", "MPMC Queue", "--stable", "--in-process"]);
    assert_eq!(code(&base), EXIT_CLEAN, "{}", stderr(&base));

    let child = Command::new(BIN)
        .args(["--bench", "MPMC Queue", "--stable", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn campaign");
    let campaign_pid = child.id();

    // Wait for worker subprocesses to appear, give them a moment to get
    // into the shard, then SIGKILL every one of them.
    let deadline = Instant::now() + Duration::from_secs(20);
    let victims = loop {
        let pids = worker_pids(campaign_pid);
        if !pids.is_empty() {
            break pids;
        }
        assert!(Instant::now() < deadline, "no worker subprocess appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    std::thread::sleep(Duration::from_millis(250));
    for pid in &victims {
        let _ = Command::new("sh")
            .arg("-c")
            .arg(format!("kill -9 {pid}"))
            .status();
    }

    let out = child.wait_with_output().expect("campaign finishes");
    assert_eq!(
        out.status.code(),
        Some(EXIT_CLEAN),
        "campaign must absorb the kill:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        stdout(&base),
        "kill -9 mid-shard must not change the merged report"
    );
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(field_u64(&err, "worker_deaths") >= 1, "{err}");
}

#[test]
fn poison_shard_is_quarantined_and_the_campaign_survives() {
    let out = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--workers",
        "2",
        "--poison",
        "RCU",
    ]);
    assert_eq!(
        code(&out),
        EXIT_RESUMABLE,
        "a quarantined shard is resumable, not fatal:\n{}",
        stderr(&out)
    );
    let so = stdout(&out);
    let rcu = so
        .lines()
        .find(|l| l.starts_with("RCU"))
        .expect("RCU row present");
    assert!(rcu.contains("errored"), "poisoned row errored: {rcu}");
    assert!(rcu.contains("SUSPECT(1)"), "poisoned row flagged: {rcu}");

    // The healthy benchmarks are untouched: their rows match a fault-free
    // campaign over just those benchmarks.
    let healthy = campaign(&["--bench", "SPSC Queue,Seqlock", "--stable", "--in-process"]);
    for line in stdout(&healthy)
        .lines()
        .filter(|l| l.starts_with("SPSC Queue") || l.starts_with("Seqlock"))
    {
        assert!(so.contains(line), "missing healthy row {line:?} in:\n{so}");
    }

    let err = stderr(&out);
    assert_eq!(field(&err, "quarantined"), "1", "{err}");
    assert!(
        field_u64(&err, "worker_deaths") >= 3,
        "one death per dispatch attempt:\n{err}"
    );
}

#[test]
fn journal_resume_after_halt_matches_an_uninterrupted_run() {
    let dir = tmp_dir("halt-resume");
    let journal = dir.join("campaign.journal");
    let journal = journal.to_str().unwrap();

    let fresh = campaign(&["--bench", FAST, "--stable", "--in-process"]);
    assert_eq!(code(&fresh), EXIT_CLEAN);

    let halted = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--in-process",
        "--journal",
        journal,
        "--halt-after",
        "1",
    ]);
    assert_eq!(
        code(&halted),
        EXIT_RESUMABLE,
        "a halted campaign exits resumable:\n{}",
        stderr(&halted)
    );
    assert_eq!(field(&stderr(&halted), "halted"), "true");

    let resumed = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--in-process",
        "--journal",
        journal,
    ]);
    assert_eq!(code(&resumed), EXIT_CLEAN, "{}", stderr(&resumed));
    assert_eq!(
        stdout(&resumed),
        stdout(&fresh),
        "resume must reproduce the uninterrupted report byte-for-byte"
    );
    let err = stderr(&resumed);
    assert_eq!(field(&err, "journal_hits"), "1", "{err}");
    assert_eq!(field_u64(&err, "live"), 2);
}

#[test]
fn corrupted_journal_tail_is_recovered_end_to_end() {
    let dir = tmp_dir("corrupt-tail");
    let journal_path = dir.join("campaign.journal");
    let journal = journal_path.to_str().unwrap();

    let fresh = campaign(&["--bench", FAST, "--stable", "--in-process"]);

    let halted = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--in-process",
        "--journal",
        journal,
        "--halt-after",
        "2",
    ]);
    assert_eq!(code(&halted), EXIT_RESUMABLE);

    // Crash mid-append: chop bytes off the last record.
    let bytes = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &bytes[..bytes.len() - 3]).unwrap();

    let resumed = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--in-process",
        "--journal",
        journal,
    ]);
    assert_eq!(code(&resumed), EXIT_CLEAN, "{}", stderr(&resumed));
    assert_eq!(
        stdout(&resumed),
        stdout(&fresh),
        "recovery from a torn tail must reproduce the uninterrupted report"
    );
    assert!(
        stderr(&resumed).contains("corrupt tail"),
        "recovery is reported:\n{}",
        stderr(&resumed)
    );
}

#[test]
fn foreign_journal_is_a_typed_error_not_a_crash() {
    let dir = tmp_dir("foreign-journal");
    let journal_path = dir.join("campaign.journal");
    std::fs::write(&journal_path, "this is not a journal\n").unwrap();
    let out = campaign(&[
        "--bench",
        "SPSC Queue",
        "--stable",
        "--in-process",
        "--journal",
        journal_path.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), EXIT_ERROR);
    assert!(stderr(&out).contains("delete the file"), "{}", stderr(&out));
}

#[test]
fn second_run_is_answered_from_the_result_cache() {
    let dir = tmp_dir("cache");
    let cache = dir.to_str().unwrap();

    let first = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--in-process",
        "--cache-dir",
        cache,
    ]);
    assert_eq!(code(&first), EXIT_CLEAN, "{}", stderr(&first));
    assert_eq!(field_u64(&stderr(&first), "live"), 3);

    let second = campaign(&[
        "--bench",
        FAST,
        "--stable",
        "--in-process",
        "--cache-dir",
        cache,
    ]);
    assert_eq!(code(&second), EXIT_CLEAN, "{}", stderr(&second));
    assert_eq!(
        stdout(&second),
        stdout(&first),
        "cache hits render the exact bytes of the live run"
    );
    let err = stderr(&second);
    // The acceptance bar is ≥90% answered from cache; here it is 100%.
    assert_eq!(field_u64(&err, "cache_hits"), 3, "{err}");
    assert_eq!(field_u64(&err, "live"), 0, "{err}");
}

#[test]
fn weakened_ordering_site_finds_a_real_bug_with_exit_code_2() {
    // Site 1 of SPSC Queue is push's tail release-store; weakening it to
    // relaxed removes the publication edge (the Figure 8 experiment) and
    // the checker reports a data race.
    let sub = campaign(&["--bench", "SPSC Queue", "--stable", "--weaken", "1"]);
    assert_eq!(code(&sub), EXIT_BUG, "{}", stderr(&sub));
    let so = stdout(&sub);
    assert!(so.contains("first-bug"), "{so}");
    assert!(so.contains("bug: data race"), "{so}");

    let inp = campaign(&[
        "--bench",
        "SPSC Queue",
        "--stable",
        "--weaken",
        "1",
        "--in-process",
    ]);
    assert_eq!(code(&inp), EXIT_BUG);
    assert_eq!(
        stdout(&inp),
        so,
        "fault injection is deterministic across process modes"
    );

    // An out-of-range site is a usage error, not a campaign.
    let bad = campaign(&["--bench", "SPSC Queue", "--stable", "--weaken", "99"]);
    assert_eq!(code(&bad), EXIT_ERROR);
    assert!(stderr(&bad).contains("out of range"), "{}", stderr(&bad));
}

#[test]
fn exit_codes_match_their_documented_values() {
    // The single source of truth is the crate root; the CLI usage string
    // and this test both restate it.
    assert_eq!(EXIT_CLEAN, 0);
    assert_eq!(EXIT_ERROR, 1);
    assert_eq!(EXIT_BUG, 2);
    assert_eq!(EXIT_RESUMABLE, 3);

    let unknown_bench = campaign(&["--bench", "No Such Structure"]);
    assert_eq!(code(&unknown_bench), EXIT_ERROR);
    assert!(stderr(&unknown_bench).contains("unknown benchmark"));

    let unknown_flag = campaign(&["--frobnicate"]);
    assert_eq!(code(&unknown_flag), EXIT_ERROR);

    let clean = campaign(&["--bench", "SPSC Queue", "--stable", "--in-process"]);
    assert_eq!(code(&clean), EXIT_CLEAN);
}
