//! End-to-end tests for the networked campaign service: the
//! `cdsspec-netd` daemon, TCP attach workers, and the `--connect`
//! client. The tentpole guarantee extends PR 3's: **moving a campaign
//! over TCP — including chaos (`kill -9`) on a remote worker mid-run —
//! changes no byte of the `--stable` report** relative to the
//! in-process baseline, and a warm daemon answers a repeated campaign
//! entirely from its cache with zero shard dispatches.
//!
//! Benchmark choice mirrors `campaign_integration.rs`: `SPSC Queue`,
//! `RCU`, `Seqlock` exhaust fast in debug builds; `MPMC Queue` runs a
//! couple of seconds — long enough to reliably `kill -9` a remote
//! worker mid-shard.

use cdsspec_campaign::net::{
    read_frame, registry_hash, request_status, write_frame, NetHello, NetReply, PROTO_VERSION,
};
use cdsspec_campaign::{AttachOpts, WorkerOpts, EXIT_CLEAN, EXIT_ERROR};
use std::io::{BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_cdsspec-campaign");
const NETD: &str = env!("CARGO_BIN_EXE_cdsspec-netd");

/// Benchmarks that exhaust quickly in debug builds.
const FAST: &str = "SPSC Queue,RCU,Seqlock";

fn campaign(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn cdsspec-campaign")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exited via exit code")
}

/// Parse the `campaign-summary: k=v ...` stderr block (remote runs print
/// the daemon-side block on the client's stderr).
fn field_u64(err: &str, key: &str) -> u64 {
    let line = err
        .lines()
        .find(|l| l.starts_with("campaign-summary:"))
        .unwrap_or_else(|| panic!("no campaign-summary line in stderr:\n{err}"));
    line.trim_start_matches("campaign-summary:")
        .split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("no {key} in summary:\n{err}"))
        .1
        .parse()
        .unwrap()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdsspec-netd-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running `cdsspec-netd` child plus its bound address. Killed on drop
/// so a failing test never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(extra: &[&str]) -> Daemon {
        let mut child = Command::new(NETD)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn cdsspec-netd");
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().expect("piped stdout"))
            .read_line(&mut line)
            .expect("daemon banner");
        let addr = line
            .trim()
            .strip_prefix("cdsspec-netd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    /// Wait (bounded) for the daemon to exit on its own and return its
    /// exit code.
    fn wait_exit(&mut self, limit: Duration) -> i32 {
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait daemon") {
                return status.code().expect("daemon exit code");
            }
            assert!(
                start.elapsed() < limit,
                "daemon did not exit within {limit:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn a TCP attach worker process against `addr`.
fn attach(addr: &str, reconnect_ms: u32) -> Child {
    Command::new(BIN)
        .args(["--attach", addr, "--reconnect-ms"])
        .arg(reconnect_ms.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn attach worker")
}

/// Poll the daemon's status until `want` workers are attached (bounded).
fn await_workers(addr: &str, want: usize) {
    let start = Instant::now();
    loop {
        if let Ok(status) = request_status(addr) {
            if status.workers.len() >= want {
                return;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "{want} workers never attached"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn wait_code(mut child: Child, limit: Duration) -> i32 {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code().expect("exit code");
        }
        if start.elapsed() >= limit {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child did not exit within {limit:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The acceptance bar for the whole networked layer: a campaign routed
/// through the daemon and two TCP workers renders the byte-identical
/// `--stable` report an in-process run produces, and the clean daemon
/// shutdown path (`--max-campaigns`) plus worker reconnect-budget exits
/// all land on exit code 0.
#[test]
fn tcp_remote_report_matches_in_process_bytes() {
    let base = campaign(&["--bench", FAST, "--stable", "--in-process", "--split", "20"]);
    assert_eq!(code(&base), EXIT_CLEAN, "baseline:\n{}", stderr(&base));

    let cache = tmp_dir("tcp-bytes");
    let mut daemon = Daemon::start(&[
        "--cache-dir",
        cache.to_str().unwrap(),
        "--workers",
        "2",
        "--max-campaigns",
        "1",
    ]);
    let w1 = attach(&daemon.addr, 1500);
    let w2 = attach(&daemon.addr, 1500);
    await_workers(&daemon.addr, 2);

    let remote = campaign(&[
        "--connect",
        &daemon.addr,
        "--bench",
        FAST,
        "--stable",
        "--split",
        "20",
    ]);
    assert_eq!(code(&remote), EXIT_CLEAN, "remote:\n{}", stderr(&remote));
    assert_eq!(
        stdout(&remote),
        stdout(&base),
        "TCP transport changed report bytes"
    );
    // The daemon-side summary lands on the client's stderr, so scripts
    // (and these assertions) read it exactly like a local run's.
    assert!(field_u64(&stderr(&remote), "dispatches") > 0);
    assert_eq!(field_u64(&stderr(&remote), "benches"), 3);

    assert_eq!(daemon.wait_exit(Duration::from_secs(10)), 0);
    // Workers notice the daemon is gone and exit 0 (they had attached).
    assert_eq!(wait_code(w1, Duration::from_secs(15)), 0);
    assert_eq!(wait_code(w2, Duration::from_secs(15)), 0);
}

/// A second identical campaign against a warm daemon is answered
/// entirely from the served cache: zero shard dispatches, all rows
/// cache hits, and — of course — the same bytes.
#[test]
fn warm_daemon_answers_repeat_campaign_from_cache() {
    let cache = tmp_dir("warm-cache");
    let mut daemon = Daemon::start(&[
        "--cache-dir",
        cache.to_str().unwrap(),
        "--workers",
        "2",
        "--max-campaigns",
        "2",
    ]);
    let worker = attach(&daemon.addr, 1500);
    await_workers(&daemon.addr, 1);

    let args = [
        "--connect",
        &daemon.addr,
        "--bench",
        FAST,
        "--stable",
        "--split",
        "20",
    ];
    let cold = campaign(&args);
    assert_eq!(code(&cold), EXIT_CLEAN, "cold:\n{}", stderr(&cold));
    assert!(
        field_u64(&stderr(&cold), "dispatches") > 0,
        "cold run works"
    );

    // Counters between campaigns: one worker attached, one campaign
    // served, and the daemon's aggregate mirrors the summary.
    let status = request_status(&daemon.addr).expect("status");
    assert_eq!(status.campaigns, 1);
    assert_eq!(status.workers.len(), 1);
    assert!(status.attaches >= 1);
    assert!(status.dispatches > 0);

    let warm = campaign(&args);
    assert_eq!(code(&warm), EXIT_CLEAN, "warm:\n{}", stderr(&warm));
    assert_eq!(stdout(&warm), stdout(&cold), "cache hit changed bytes");
    let err = stderr(&warm);
    assert_eq!(
        field_u64(&err, "dispatches"),
        0,
        "warm campaign must not dispatch a single shard:\n{err}"
    );
    assert_eq!(field_u64(&err, "cache_hits"), 3, "every bench from cache");
    assert_eq!(field_u64(&err, "live"), 0);

    assert_eq!(daemon.wait_exit(Duration::from_secs(10)), 0);
    assert_eq!(wait_code(worker, Duration::from_secs(15)), 0);
}

/// `kill -9` on a remote worker mid-campaign: its socket dies, the
/// daemon's supervisor requeues the lease on the surviving worker, and
/// the final report is byte-identical to the in-process baseline — the
/// same invisibility the subprocess supervisor guarantees, now over TCP.
#[test]
fn kill9_remote_worker_mid_run_is_invisible() {
    // MPMC Queue runs long enough to kill a worker mid-shard.
    let bench = "MPMC Queue,SPSC Queue,RCU";
    let base = campaign(&[
        "--bench",
        bench,
        "--stable",
        "--in-process",
        "--split",
        "20",
    ]);
    assert_eq!(code(&base), EXIT_CLEAN, "baseline:\n{}", stderr(&base));

    let cache = tmp_dir("kill9");
    let mut daemon = Daemon::start(&[
        "--cache-dir",
        cache.to_str().unwrap(),
        "--workers",
        "2",
        "--max-campaigns",
        "1",
    ]);
    let victim = attach(&daemon.addr, 1500);
    let survivor = attach(&daemon.addr, 1500);
    await_workers(&daemon.addr, 2);

    let victim_pid = victim.id();
    let killer = std::thread::spawn(move || {
        // Let the campaign get dispatched, then kill one worker cold.
        std::thread::sleep(Duration::from_millis(600));
        unsafe { libc_kill(victim_pid as i32, 9) };
    });
    let remote = campaign(&[
        "--connect",
        &daemon.addr,
        "--bench",
        bench,
        "--stable",
        "--split",
        "20",
    ]);
    killer.join().unwrap();

    assert_eq!(code(&remote), EXIT_CLEAN, "remote:\n{}", stderr(&remote));
    assert_eq!(
        stdout(&remote),
        stdout(&base),
        "a killed remote worker changed report bytes"
    );

    assert_eq!(daemon.wait_exit(Duration::from_secs(10)), 0);
    let mut victim = victim;
    let status = victim.wait().expect("reap killed worker");
    assert!(!status.success(), "the victim really was killed");
    assert_eq!(wait_code(survivor, Duration::from_secs(15)), 0);
}

// Minimal FFI shim: the test only needs kill(2) and libc isn't a
// workspace dependency.
extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}

/// Handshake guards: a wrong protocol version and a wrong registry hash
/// are both rejected with a reason, and a worker whose attach is
/// rejected exits 1 immediately (retrying cannot help).
#[test]
fn handshake_mismatches_are_rejected() {
    let daemon = Daemon::start(&["--workers", "1"]);

    // Wrong protocol version.
    let mut s = TcpStream::connect(&daemon.addr).unwrap();
    let hello = NetHello::Attach {
        proto: PROTO_VERSION + 1,
        registry: registry_hash(),
        pid: std::process::id(),
    };
    write_frame(&mut s, &hello.encode()).unwrap();
    let reply = NetReply::decode(&read_frame(&mut s).unwrap()).unwrap();
    match reply {
        NetReply::Reject { reason } => assert!(reason.contains("protocol version"), "{reason}"),
        other => panic!("expected reject, got {other:?}"),
    }

    // Wrong registry hash on a campaign request.
    let mut s = TcpStream::connect(&daemon.addr).unwrap();
    let hello = NetHello::Campaign {
        proto: PROTO_VERSION,
        registry: registry_hash() ^ 1,
        req: cdsspec_campaign::CampaignRequest {
            bench_filter: None,
            split: 0,
            max_executions: 1,
            stable: true,
            weaken: Vec::new(),
        },
    };
    write_frame(&mut s, &hello.encode()).unwrap();
    let reply = NetReply::decode(&read_frame(&mut s).unwrap()).unwrap();
    match reply {
        NetReply::Reject { reason } => assert!(reason.contains("registry hash"), "{reason}"),
        other => panic!("expected reject, got {other:?}"),
    }

    // A rejected attach worker gives up immediately with exit 1: spin a
    // fake daemon that rejects every hello.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let _ = read_frame(&mut conn);
        let _ = write_frame(
            &mut conn,
            &NetReply::Reject {
                reason: "registry hash mismatch (test)".into(),
            }
            .encode(),
        );
    });
    let code = cdsspec_campaign::net::attach_worker(&AttachOpts {
        addr: fake_addr,
        worker: WorkerOpts {
            heartbeat: Duration::from_millis(500),
            worker_threads: 1,
            poison: None,
        },
        reconnect_budget: Duration::from_secs(5),
    });
    assert_eq!(code, EXIT_ERROR, "rejected attach must exit 1, not retry");
    fake.join().unwrap();
}

/// A worker that can never reach a daemon exhausts its reconnect budget
/// and exits 1; local-only flags are refused in `--connect` mode.
#[test]
fn unreachable_daemon_and_bad_flag_combinations_error() {
    // Port 1 is never listening.
    let out = campaign(&["--attach", "127.0.0.1:1", "--reconnect-ms", "200"]);
    assert_eq!(code(&out), EXIT_ERROR, "{}", stderr(&out));

    let out = campaign(&["--connect", "127.0.0.1:1", "--in-process"]);
    assert_eq!(code(&out), EXIT_ERROR);
    assert!(
        stderr(&out).contains("local-only"),
        "wants a clear diagnostic:\n{}",
        stderr(&out)
    );

    let out = campaign(&["--status"]);
    assert_eq!(code(&out), EXIT_ERROR, "--status needs --connect");
}
