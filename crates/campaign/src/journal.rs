//! The append-only campaign journal.
//!
//! Every durable campaign event is one framed record appended to a single
//! file and fsync'd before the campaign acts on it:
//!
//! ```text
//! cdsspec-journal v1\n                      (magic header, once)
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]   (per record)
//! ```
//!
//! The payload is a single-line JSON object (see [`crate::json`]); the
//! CRC covers the payload bytes. On open, the journal replays every
//! record, verifying length and checksum; the first frame that is
//! truncated or fails its CRC — the fingerprint of a crash mid-append —
//! ends the replay, and the file is **truncated back to the last valid
//! record** so subsequent appends continue from a clean state. A bad
//! *header* is not recoverable (the file is not ours) and is reported as
//! a typed error instead.
//!
//! Compaction ([`Journal::compact`]) rewrites a record set atomically via
//! a temp file + rename, for retiring a finished campaign's history.

use crate::error::ParseError;
use crate::fsio::write_atomic;
use crate::hash::crc32;
use crate::json::Json;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic first line of every journal file.
pub const MAGIC: &str = "cdsspec-journal v1\n";

/// Frames larger than this are treated as tail corruption, not records —
/// no legitimate campaign record approaches it, and honoring a garbage
/// length prefix would mean a multi-gigabyte allocation.
const MAX_RECORD: u32 = 64 << 20;

/// What [`Journal::open`] recovered from an existing file.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every valid record, in append order.
    pub records: Vec<Json>,
    /// Bytes of truncated/corrupted tail that were discarded (0 for a
    /// clean file).
    pub dropped_bytes: u64,
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying and validating
    /// its contents. A corrupted or truncated tail is cut back to the
    /// last valid record; a foreign or unversioned header is a
    /// [`ParseError::BadMagic`].
    pub fn open(path: &Path) -> Result<(Journal, Recovery), ParseError> {
        let io_err = |error: std::io::Error| ParseError::Io {
            path: path.to_path_buf(),
            error,
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;

        if bytes.is_empty() {
            file.write_all(MAGIC.as_bytes()).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
            return Ok((
                Journal {
                    file,
                    path: path.to_path_buf(),
                },
                Recovery::default(),
            ));
        }
        if !bytes.starts_with(MAGIC.as_bytes()) {
            let found: String = String::from_utf8_lossy(&bytes[..bytes.len().min(24)]).into_owned();
            return Err(ParseError::BadMagic {
                path: path.to_path_buf(),
                found,
                expected: "cdsspec-journal v1",
            });
        }

        let mut recovery = Recovery::default();
        let mut pos = MAGIC.len();
        let mut valid_end = pos;
        while pos < bytes.len() {
            let Some(frame) = decode_frame(&bytes[pos..]) else {
                break; // truncated or corrupted tail
            };
            let (payload, frame_len) = frame;
            let Ok(record) = Json::parse(payload) else {
                break; // CRC passed but payload is not our JSON: corrupt
            };
            recovery.records.push(record);
            pos += frame_len;
            valid_end = pos;
        }
        if valid_end < bytes.len() {
            recovery.dropped_bytes = (bytes.len() - valid_end) as u64;
            file.set_len(valid_end as u64).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            recovery,
        ))
    }

    /// Append one record and fsync it. When this returns, the record
    /// survives a crash of this process and of the machine.
    pub fn append(&mut self, record: &Json) -> Result<(), ParseError> {
        let payload = record.encode();
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let io_err = |error: std::io::Error| ParseError::Io {
            path: self.path.clone(),
            error,
        };
        self.file.write_all(&frame).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically rewrite `path` to contain exactly `records` (temp file
    /// in the same directory, fsync, rename). Used to retire history the
    /// campaign no longer needs.
    pub fn compact(path: &Path, records: &[Json]) -> Result<(), ParseError> {
        let mut bytes = Vec::from(MAGIC.as_bytes());
        for record in records {
            let payload = record.encode();
            let payload = payload.as_bytes();
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(payload).to_le_bytes());
            bytes.extend_from_slice(payload);
        }
        write_atomic(path, &bytes).map_err(|error| ParseError::Io {
            path: path.to_path_buf(),
            error,
        })
    }
}

/// Decode one `[len][crc][payload]` frame from the front of `bytes`.
/// Returns the payload text and total frame length, or `None` if the
/// frame is truncated, oversized, checksum-corrupt, or not UTF-8.
fn decode_frame(bytes: &[u8]) -> Option<(&str, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > MAX_RECORD {
        return None;
    }
    let end = 8usize.checked_add(len as usize)?;
    let payload = bytes.get(8..end)?;
    if crc32(payload) != crc {
        return None;
    }
    let payload = std::str::from_utf8(payload).ok()?;
    Some((payload, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cdsspec-journal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.bin")
    }

    fn rec(n: u64) -> Json {
        Json::obj(vec![("rec", Json::str("test")), ("n", Json::num(n))])
    }

    #[test]
    fn append_and_reopen() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, recovery) = Journal::open(&path).unwrap();
            assert!(recovery.records.is_empty());
            j.append(&rec(1)).unwrap();
            j.append(&rec(2)).unwrap();
        }
        let (_, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.records, vec![rec(1), rec(2)]);
        assert_eq!(recovery.dropped_bytes, 0);
    }

    #[test]
    fn truncated_tail_recovers_to_last_valid_record() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&rec(1)).unwrap();
            j.append(&rec(2)).unwrap();
        }
        // Chop bytes off the last frame, simulating a crash mid-append.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (mut j, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.records, vec![rec(1)], "partial record dropped");
        assert!(recovery.dropped_bytes > 0);
        // The file was physically truncated; appending continues cleanly.
        j.append(&rec(3)).unwrap();
        drop(j);
        let (_, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.records, vec![rec(1), rec(3)]);
        assert_eq!(recovery.dropped_bytes, 0);
    }

    #[test]
    fn corrupted_payload_byte_is_caught_by_crc() {
        let path = temp_path("bitrot");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&rec(1)).unwrap();
            j.append(&rec(2)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the *second* record's payload (last byte of file).
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.records, vec![rec(1)]);
        assert!(recovery.dropped_bytes > 0);
    }

    #[test]
    fn garbage_length_prefix_is_tail_corruption_not_allocation() {
        let path = temp_path("hugelen");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(&rec(1)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.records, vec![rec(1)]);
    }

    #[test]
    fn foreign_file_is_a_typed_error() {
        let path = temp_path("foreign");
        std::fs::write(&path, "not a journal at all\n").unwrap();
        match Journal::open(&path) {
            Err(ParseError::BadMagic { found, .. }) => {
                assert!(found.starts_with("not a journal"));
            }
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let rendered = Journal::open(&path).unwrap_err().to_string();
        assert!(rendered.contains("delete the file"), "{rendered}");
    }

    #[test]
    fn compact_rewrites_atomically() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for n in 0..10 {
                j.append(&rec(n)).unwrap();
            }
        }
        Journal::compact(&path, &[rec(42)]).unwrap();
        let (_, recovery) = Journal::open(&path).unwrap();
        assert_eq!(recovery.records, vec![rec(42)]);
    }
}
