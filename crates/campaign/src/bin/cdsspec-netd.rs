//! `cdsspec-netd` — the long-running networked exploration daemon.
//!
//! ```text
//! cdsspec-netd [--listen ADDR] [--cache-dir DIR] [--workers N]
//!              [--lease-ms N] [--heartbeat-ms N] [--max-attempts N]
//!              [--attach-timeout-ms N] [--max-campaigns N]
//! ```
//!
//! Prints `cdsspec-netd listening on <addr>` once bound (scripts parse
//! this to learn the port when `--listen` ends in `:0`). Workers join
//! with `cdsspec-campaign --attach ADDR`; clients run campaigns with
//! `cdsspec-campaign --connect ADDR ...` and read counters with
//! `--connect ADDR --status`.
//!
//! Exit codes: `0` clean shutdown (`--max-campaigns` reached), `1`
//! startup error (unbindable address, bad flags).

use cdsspec_campaign::{DaemonOpts, EXIT_ERROR};
use std::time::Duration;

const USAGE: &str = "usage: cdsspec-netd [options]
  --listen ADDR          listen address (default 127.0.0.1:0; the bound
                         address is printed on stdout)
  --cache-dir DIR        content-addressed result cache served to clients
  --workers N            max concurrent shard leases (default 2)
  --lease-ms N           lease duration in ms (default 30000)
  --heartbeat-ms N       heartbeat interval workers are asked to use (default 500)
  --max-attempts N       dispatch attempts per shard before quarantine (default 3)
  --attach-timeout-ms N  how long a campaign waits for a worker to attach
                         before abandoning (default 30000)
  --max-campaigns N      exit cleanly after serving N campaigns (testing)
exit codes: 0 clean shutdown, 1 error";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(args));
}

fn run(args: Vec<String>) -> i32 {
    let mut opts = DaemonOpts::default();
    let mut it = args.into_iter();
    let missing = |flag: &str| {
        eprintln!("cdsspec-netd: {flag} needs a value\n{USAGE}");
        EXIT_ERROR
    };
    while let Some(arg) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => return missing(&arg),
                }
            };
        }
        macro_rules! parse {
            ($ty:ty) => {
                match value!().parse::<$ty>() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("cdsspec-netd: bad value for {arg}: {e}");
                        return EXIT_ERROR;
                    }
                }
            };
        }
        match arg.as_str() {
            "--listen" => opts.listen = value!(),
            "--cache-dir" => opts.cache_dir = Some(value!().into()),
            "--workers" => opts.sup.workers = parse!(usize),
            "--lease-ms" => opts.sup.lease = Duration::from_millis(parse!(u64)),
            "--heartbeat-ms" => opts.sup.heartbeat = Duration::from_millis(parse!(u64)),
            "--max-attempts" => opts.sup.max_attempts = parse!(u32),
            "--attach-timeout-ms" => {
                opts.sup.attach_timeout = Duration::from_millis(parse!(u64));
            }
            "--max-campaigns" => opts.max_campaigns = Some(parse!(u64)),
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("cdsspec-netd: unknown flag {other:?}\n{USAGE}");
                return EXIT_ERROR;
            }
        }
    }
    match cdsspec_campaign::run_daemon(opts) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("cdsspec-netd: {message}");
            EXIT_ERROR
        }
    }
}
