//! `cdsspec-campaign` — fault-tolerant multi-process checking campaigns.
//!
//! ```text
//! cdsspec-campaign [--bench A,B] [--workers N] [--worker-threads N]
//!                  [--split N] [--max-executions N] [--stable]
//!                  [--journal PATH] [--cache-dir DIR] [--in-process]
//!                  [--lease-ms N] [--heartbeat-ms N] [--max-attempts N]
//!                  [--chaos-kill-pct P] [--chaos-seed S] [--weaken S1,S2]
//!                  [--connect ADDR [--status]] [--attach ADDR]
//! ```
//!
//! Exit codes are documented on the `cdsspec_campaign` crate root
//! (`0` clean, `1` error, `2` bug found, `3` resumable).
//!
//! Networked modes (see the README daemon quickstart):
//! `--connect ADDR` runs the campaign on a `cdsspec-netd` daemon
//! (`--status` instead asks for its counters); `--attach ADDR` turns
//! this process into a TCP worker serving that daemon.
//!
//! Hidden flags (used by the supervisor and the fault-injection tests):
//! `--worker-mode`, `--poison BENCH`, `--halt-after N`.

use cdsspec_campaign::net::{attach_worker, remote_campaign, request_status};
use cdsspec_campaign::{
    run_campaign, worker_main, AttachOpts, CampaignOpts, CampaignRequest, WorkerOpts, EXIT_ERROR,
};
use std::time::Duration;

const USAGE: &str = "usage: cdsspec-campaign [options]
  --bench A,B          only these benchmarks (registry names, comma-separated)
  --workers N          worker subprocess slots (default 2)
  --worker-threads N   explorer threads inside each task (default 1)
  --split N            probe cap; leftover frontier fans out as shard tasks (0 = off)
  --max-executions N   execution cap per task (default 1000000)
  --stable             mask wall-clock times (byte-stable output)
  --journal PATH       append-only campaign journal (resume by re-running)
  --cache-dir DIR      content-addressed result cache
  --in-process         run tasks in this process (no subprocesses)
  --lease-ms N         lease duration in ms (default 30000)
  --heartbeat-ms N     worker heartbeat interval in ms (default 500)
  --max-attempts N     dispatch attempts per shard before quarantine (default 3)
  --chaos-kill-pct P   kill a worker after P% of first dispatches (testing)
  --chaos-seed S       seed for the chaos RNG
  --weaken S1,S2       weaken these ordering-site indices one step before
                       checking (fault injection; sites must exist in every
                       selected benchmark)
networked modes:
  --connect ADDR       run the campaign on a cdsspec-netd daemon at ADDR
  --connect ADDR --status
                       print the daemon's counters instead
  --attach ADDR        become a TCP worker for the daemon at ADDR
                       (honors --heartbeat-ms, --worker-threads;
                        --reconnect-ms N bounds reconnect retries, default 10000)
exit codes: 0 clean, 1 error, 2 bug found, 3 resumable";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(args));
}

fn run(args: Vec<String>) -> i32 {
    // Worker and attach modes have their own tiny flag sets; recognize
    // them first so the supervisor's spawn line (and attach scripts)
    // never trip over campaign-only validation.
    if args.iter().any(|a| a == "--worker-mode") {
        return run_worker(args);
    }
    if args.iter().any(|a| a == "--attach") {
        return run_attach(args);
    }

    let mut opts = CampaignOpts::default();
    let mut connect: Option<String> = None;
    let mut status = false;
    let mut it = args.into_iter();
    let missing = |flag: &str| {
        eprintln!("cdsspec-campaign: {flag} needs a value\n{USAGE}");
        EXIT_ERROR
    };
    while let Some(arg) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => return missing(&arg),
                }
            };
        }
        macro_rules! parse {
            ($ty:ty) => {
                match value!().parse::<$ty>() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("cdsspec-campaign: bad value for {arg}: {e}");
                        return EXIT_ERROR;
                    }
                }
            };
        }
        match arg.as_str() {
            "--bench" => {
                opts.bench_filter =
                    Some(value!().split(',').map(|s| s.trim().to_string()).collect());
            }
            "--workers" => opts.sup.workers = parse!(usize),
            "--worker-threads" => {
                opts.worker_threads = parse!(usize);
                opts.sup.worker_threads = opts.worker_threads;
            }
            "--split" => opts.split = parse!(u64),
            "--max-executions" => opts.max_executions = parse!(u64),
            "--stable" => opts.stable = true,
            "--journal" => opts.journal = Some(value!().into()),
            "--cache-dir" => opts.cache_dir = Some(value!().into()),
            "--in-process" => opts.in_process = true,
            "--lease-ms" => opts.sup.lease = Duration::from_millis(parse!(u64)),
            "--heartbeat-ms" => opts.sup.heartbeat = Duration::from_millis(parse!(u64)),
            "--max-attempts" => opts.sup.max_attempts = parse!(u32),
            "--chaos-kill-pct" => opts.sup.chaos_kill_pct = parse!(u32).min(100),
            "--chaos-seed" => opts.sup.chaos_seed = parse!(u64),
            "--poison" => opts.sup.poison = Some(value!()),
            "--weaken" => {
                for part in value!().split(',') {
                    match part.trim().parse::<usize>() {
                        Ok(s) => opts.weaken.push(s),
                        Err(e) => {
                            eprintln!("cdsspec-campaign: bad value for --weaken: {e}");
                            return EXIT_ERROR;
                        }
                    }
                }
            }
            "--halt-after" => opts.halt_after = Some(parse!(usize)),
            "--connect" => connect = Some(value!()),
            "--status" => status = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("cdsspec-campaign: unknown flag {other:?}\n{USAGE}");
                return EXIT_ERROR;
            }
        }
    }

    if let Some(addr) = connect {
        return run_remote(&addr, status, &opts);
    }
    if status {
        eprintln!("cdsspec-campaign: --status needs --connect ADDR\n{USAGE}");
        return EXIT_ERROR;
    }

    let stdout = std::io::stdout();
    match run_campaign(&opts, &mut stdout.lock()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("cdsspec-campaign: {message}");
            EXIT_ERROR
        }
    }
}

/// `--connect`: the campaign runs where the daemon's cache and worker
/// pool live, so flags that configure *this* machine's execution are
/// contradictions, not no-ops — reject them loudly.
fn run_remote(addr: &str, status: bool, opts: &CampaignOpts) -> i32 {
    if status {
        return match request_status(addr) {
            Ok(report) => {
                print!("{}", report.render());
                0
            }
            Err(e) => {
                eprintln!("cdsspec-campaign: {e}");
                EXIT_ERROR
            }
        };
    }
    let local_only: &[(&str, bool)] = &[
        ("--in-process", opts.in_process),
        ("--journal", opts.journal.is_some()),
        ("--cache-dir", opts.cache_dir.is_some()),
        ("--halt-after", opts.halt_after.is_some()),
        ("--chaos-kill-pct", opts.sup.chaos_kill_pct > 0),
        ("--poison", opts.sup.poison.is_some()),
    ];
    for (flag, set) in local_only {
        if *set {
            eprintln!("cdsspec-campaign: {flag} is local-only and cannot combine with --connect");
            return EXIT_ERROR;
        }
    }
    let req = CampaignRequest {
        bench_filter: opts.bench_filter.clone(),
        split: opts.split,
        max_executions: opts.max_executions,
        stable: opts.stable,
        weaken: opts.weaken.clone(),
    };
    let stdout = std::io::stdout();
    match remote_campaign(addr, &req, &mut stdout.lock()) {
        Ok((code, summary)) => {
            // The daemon-side summary goes to our stderr so scripts see
            // the same `campaign-summary:` block local runs produce.
            eprint!("{summary}");
            code
        }
        Err(message) => {
            eprintln!("cdsspec-campaign: {message}");
            EXIT_ERROR
        }
    }
}

fn run_worker(args: Vec<String>) -> i32 {
    let mut opts = WorkerOpts {
        heartbeat: Duration::from_millis(500),
        worker_threads: 1,
        poison: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--worker-mode" => {}
            "--heartbeat-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => opts.heartbeat = Duration::from_millis(ms),
                None => return EXIT_ERROR,
            },
            "--worker-threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => opts.worker_threads = n,
                None => return EXIT_ERROR,
            },
            "--poison" => match it.next() {
                Some(bench) => opts.poison = Some(bench),
                None => return EXIT_ERROR,
            },
            other => {
                eprintln!("cdsspec-campaign worker: unknown flag {other:?}");
                return EXIT_ERROR;
            }
        }
    }
    worker_main(opts)
}

fn run_attach(args: Vec<String>) -> i32 {
    let mut opts = AttachOpts {
        addr: String::new(),
        worker: WorkerOpts {
            heartbeat: Duration::from_millis(500),
            worker_threads: 1,
            poison: None,
        },
        reconnect_budget: Duration::from_millis(10_000),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--attach" => match it.next() {
                Some(addr) => opts.addr = addr,
                None => return EXIT_ERROR,
            },
            "--heartbeat-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => opts.worker.heartbeat = Duration::from_millis(ms),
                None => return EXIT_ERROR,
            },
            "--worker-threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => opts.worker.worker_threads = n,
                None => return EXIT_ERROR,
            },
            "--poison" => match it.next() {
                Some(bench) => opts.worker.poison = Some(bench),
                None => return EXIT_ERROR,
            },
            "--reconnect-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => opts.reconnect_budget = Duration::from_millis(ms),
                None => return EXIT_ERROR,
            },
            other => {
                eprintln!("cdsspec-campaign worker: unknown flag {other:?}");
                return EXIT_ERROR;
            }
        }
    }
    attach_worker(&opts)
}
