//! `cdsspec-netd`: the long-running exploration service.
//!
//! The daemon owns three things and wires them together:
//!
//! - a **worker registry**: TCP connections that completed the
//!   [`crate::net::NetHello::Attach`] handshake. Each has a dedicated
//!   reader thread routing its framed [`crate::proto`] lines to
//!   whatever supervisor slot the worker is currently wired to; a
//!   connection that dies while wired surfaces as [`Event::Eof`] and
//!   the supervisor requeues its lease — byte-for-byte the same
//!   recovery path as a SIGKILLed subprocess.
//! - a **served result cache**: client campaign requests run through
//!   the ordinary [`crate::campaign`] pipeline with the daemon's cache
//!   directory, so warm rows are answered without dispatching a single
//!   shard, and fresh rows are stored for the next client.
//! - a **status surface**: per-connection counters over the same wire,
//!   rendered by `cdsspec-campaign --status`.
//!
//! Campaigns are serialized behind one mutex: the registry is a single
//! pool and the determinism argument is per-campaign, so concurrent
//! interleaving would only add scheduling noise for zero throughput
//! (the pool is the bottleneck either way).

use crate::campaign::{run_campaign_with, CampaignOpts};
use crate::net::{
    read_frame, registry_hash, write_frame, CampaignRequest, NetHello, NetReply, StatusReport,
    WorkerStatus, PROTO_VERSION,
};
use crate::proto::ToWorker;
use crate::supervisor::{Event, Provision, SupervisorOpts, Transport, WorkerLink};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon settings (the `cdsspec-netd` CLI builds one of these).
#[derive(Clone, Debug)]
pub struct DaemonOpts {
    /// Listen address (`127.0.0.1:0` picks a free port; the bound
    /// address is printed on stdout either way).
    pub listen: String,
    /// Result-cache directory backing all served campaigns (`None` =
    /// serve without a cache — every request computes live).
    pub cache_dir: Option<PathBuf>,
    /// Supervisor settings for served campaigns. `workers` bounds
    /// concurrent leases; `attach_timeout` bounds how long a campaign
    /// waits for the first worker to attach before abandoning.
    pub sup: SupervisorOpts,
    /// Exit after serving this many campaign requests (tests use this
    /// for a deterministic shutdown; `None` = run forever).
    pub max_campaigns: Option<u64>,
}

impl Default for DaemonOpts {
    fn default() -> Self {
        DaemonOpts {
            listen: "127.0.0.1:0".into(),
            cache_dir: None,
            sup: SupervisorOpts::default(),
            max_campaigns: None,
        }
    }
}

/// Where an attached worker's incoming lines currently go.
enum Route {
    /// Attached, not wired to any slot; lines are dropped (a worker
    /// speaks only when spoken to, so there is nothing to drop in
    /// practice beyond a late heartbeat).
    Idle,
    /// Wired to supervisor slot `slot` at provision `epoch`; lines
    /// forward to the supervisor's event channel.
    Wired {
        slot: usize,
        epoch: u64,
        tx: mpsc::Sender<Event>,
    },
    /// The connection is gone; the registry entry is garbage.
    Dead,
}

/// One attached worker connection, as held by the idle pool (identity
/// lives on the roster entry sharing the same `route`).
struct RemoteWorker {
    writer: TcpStream,
    route: Arc<Mutex<Route>>,
}

struct RosterEntry {
    pid: u32,
    addr: String,
    route: Arc<Mutex<Route>>,
}

/// All attached worker connections: an idle pool the transport checks
/// links out of, plus a roster for the status surface.
#[derive(Default)]
struct WorkerRegistry {
    idle: Mutex<Vec<RemoteWorker>>,
    roster: Mutex<Vec<RosterEntry>>,
}

impl WorkerRegistry {
    /// Register a handshaken connection and start its reader thread.
    fn attach(&self, stream: TcpStream, pid: u32, addr: String) {
        let Ok(writer) = stream.try_clone() else {
            return; // connection already dead; nothing to register
        };
        let route = Arc::new(Mutex::new(Route::Idle));
        self.roster.lock().unwrap().push(RosterEntry {
            pid,
            addr,
            route: Arc::clone(&route),
        });
        {
            let route = Arc::clone(&route);
            let mut reader = stream;
            std::thread::spawn(move || loop {
                match read_frame(&mut reader) {
                    Ok(line) => {
                        let r = route.lock().unwrap_or_else(|p| p.into_inner());
                        match &*r {
                            Route::Wired { slot, epoch, tx } => {
                                let _ = tx.send(Event::Line(*slot, *epoch, line));
                            }
                            Route::Idle => {} // late heartbeat; drop
                            Route::Dead => break,
                        }
                    }
                    Err(_) => {
                        let mut r = route.lock().unwrap_or_else(|p| p.into_inner());
                        if let Route::Wired { slot, epoch, tx } = &*r {
                            let _ = tx.send(Event::Eof(*slot, *epoch));
                        }
                        *r = Route::Dead;
                        break;
                    }
                }
            });
        }
        self.idle
            .lock()
            .unwrap()
            .push(RemoteWorker { writer, route });
    }

    /// Pop an idle live worker and wire it to `(slot, epoch, tx)`.
    fn checkout(&self, slot: usize, epoch: u64, tx: &mpsc::Sender<Event>) -> Option<RemoteWorker> {
        let mut idle = self.idle.lock().unwrap();
        while let Some(worker) = idle.pop() {
            let mut r = worker.route.lock().unwrap_or_else(|p| p.into_inner());
            if matches!(*r, Route::Dead) {
                drop(r);
                continue; // died while idle; discard
            }
            *r = Route::Wired {
                slot,
                epoch,
                tx: tx.clone(),
            };
            drop(r);
            return Some(worker);
        }
        None
    }

    /// Snapshot for the status surface, dropping dead entries.
    fn status(&self) -> Vec<WorkerStatus> {
        let mut roster = self.roster.lock().unwrap();
        roster.retain(|e| {
            !matches!(
                *e.route.lock().unwrap_or_else(|p| p.into_inner()),
                Route::Dead
            )
        });
        roster
            .iter()
            .map(|e| WorkerStatus {
                pid: e.pid,
                addr: e.addr.clone(),
                busy: matches!(
                    *e.route.lock().unwrap_or_else(|p| p.into_inner()),
                    Route::Wired { .. }
                ),
            })
            .collect()
    }
}

/// The [`Transport`] that provisions supervisor slots from the attach
/// registry instead of spawning subprocesses.
struct NetTransport {
    registry: Arc<WorkerRegistry>,
}

impl Transport for NetTransport {
    fn provision(&mut self, slot: usize, epoch: u64, tx: &mpsc::Sender<Event>) -> Provision {
        match self.registry.checkout(slot, epoch, tx) {
            Some(worker) => Provision::Link(Box::new(NetLink {
                worker: Some(worker),
                registry: Arc::clone(&self.registry),
            })),
            // No worker attached right now — not a failure; one may
            // attach any moment. The supervisor retries without
            // charging the slot (its attach_timeout bounds the wait).
            None => Provision::Unavailable,
        }
    }
}

struct NetLink {
    worker: Option<RemoteWorker>,
    registry: Arc<WorkerRegistry>,
}

impl WorkerLink for NetLink {
    fn send(&mut self, msg: &ToWorker) -> bool {
        match &mut self.worker {
            Some(w) => write_frame(&mut w.writer, &msg.encode()).is_ok(),
            None => false,
        }
    }

    fn kill(&mut self) {
        if let Some(w) = self.worker.take() {
            // Mark dead first so the reader can't forward anything more,
            // then sever the socket: the remote worker sees the close
            // and reconnects as a fresh attach.
            *w.route.lock().unwrap_or_else(|p| p.into_inner()) = Route::Dead;
            let _ = w.writer.shutdown(std::net::Shutdown::Both);
        }
    }

    fn release(mut self: Box<Self>) {
        if let Some(w) = self.worker.take() {
            let mut r = w.route.lock().unwrap_or_else(|p| p.into_inner());
            if matches!(*r, Route::Dead) {
                return; // died while wired; nothing to return
            }
            // Unlike a subprocess link there is no Exit here: the worker
            // outlives the campaign and goes back in the pool.
            *r = Route::Idle;
            drop(r);
            self.registry.idle.lock().unwrap().push(w);
        }
    }
}

impl Drop for NetLink {
    fn drop(&mut self) {
        self.kill();
    }
}

#[derive(Default)]
struct DaemonStats {
    attaches: AtomicU64,
    rejects: AtomicU64,
    campaigns: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    dispatches: AtomicU64,
    requeues: AtomicU64,
    worker_deaths: AtomicU64,
}

struct DaemonState {
    opts: DaemonOpts,
    registry: Arc<WorkerRegistry>,
    stats: DaemonStats,
    /// Serializes served campaigns (see the module docs).
    campaign_lock: Mutex<()>,
    registry_hash: u64,
    started: Instant,
    stop: AtomicBool,
    self_addr: std::net::SocketAddr,
}

/// Run the daemon until `max_campaigns` is reached (or forever).
/// Returns the process exit code. Prints
/// `cdsspec-netd listening on <addr>` to stdout once bound — scripts
/// and tests parse that line to learn the picked port.
pub fn run_daemon(opts: DaemonOpts) -> Result<i32, String> {
    let listener = TcpListener::bind(&opts.listen)
        .map_err(|e| format!("cannot listen on {}: {e}", opts.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?;
    println!("cdsspec-netd listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    run_daemon_on(listener, opts)
}

/// Serve on an already-bound listener (no banner). Lets a host that
/// needs the picked port *before* the accept loop starts — the
/// `campaign_probe` bench binary hosts a loopback daemon thread this
/// way — bind `127.0.0.1:0` itself and read `local_addr` directly.
pub fn run_daemon_on(listener: TcpListener, opts: DaemonOpts) -> Result<i32, String> {
    let addr = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?;
    let state = Arc::new(DaemonState {
        opts,
        registry: Arc::new(WorkerRegistry::default()),
        stats: DaemonStats::default(),
        campaign_lock: Mutex::new(()),
        registry_hash: registry_hash(),
        started: Instant::now(),
        stop: AtomicBool::new(false),
        self_addr: addr,
    });

    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || handle_conn(stream, &state));
    }
    Ok(0)
}

fn reject(stream: &mut TcpStream, state: &DaemonState, reason: String) {
    state.stats.rejects.fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(stream, &NetReply::Reject { reason }.encode());
}

fn handle_conn(mut stream: TcpStream, state: &DaemonState) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    // A generous handshake deadline so a wedged client can't pin this
    // thread forever; cleared for worker connections, which legally
    // stay silent between campaigns.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let hello = match read_frame(&mut stream) {
        Ok(line) => match NetHello::decode(&line) {
            Ok(h) => h,
            Err(e) => {
                reject(&mut stream, state, format!("bad hello: {e}"));
                return;
            }
        },
        Err(_) => return, // died before saying anything; not worth counting
    };
    let guard = |proto: u64, registry: Option<u64>| -> Option<String> {
        if proto != PROTO_VERSION {
            return Some(format!(
                "protocol version {proto} != daemon's {PROTO_VERSION}"
            ));
        }
        if let Some(r) = registry {
            if r != state.registry_hash {
                return Some(format!(
                    "benchmark registry hash {r:#018x} != daemon's {:#018x} \
                     (mismatched build — results would not be comparable)",
                    state.registry_hash
                ));
            }
        }
        None
    };
    match hello {
        NetHello::Attach {
            proto,
            registry,
            pid,
        } => {
            if let Some(reason) = guard(proto, Some(registry)) {
                reject(&mut stream, state, reason);
                return;
            }
            if write_frame(
                &mut stream,
                &NetReply::Welcome {
                    pid: std::process::id(),
                }
                .encode(),
            )
            .is_err()
            {
                return;
            }
            let _ = stream.set_read_timeout(None);
            state.stats.attaches.fetch_add(1, Ordering::Relaxed);
            state.registry.attach(stream, pid, peer);
        }
        NetHello::Campaign {
            proto,
            registry,
            req,
        } => {
            if let Some(reason) = guard(proto, Some(registry)) {
                reject(&mut stream, state, reason);
                return;
            }
            serve_campaign(stream, state, req);
        }
        NetHello::Status { proto } => {
            if let Some(reason) = guard(proto, None) {
                reject(&mut stream, state, reason);
                return;
            }
            let status = snapshot_status(state);
            let _ = write_frame(&mut stream, &NetReply::Status(status).encode());
        }
    }
}

fn snapshot_status(state: &DaemonState) -> StatusReport {
    let s = &state.stats;
    StatusReport {
        pid: std::process::id(),
        uptime_ms: state.started.elapsed().as_millis() as u64,
        attaches: s.attaches.load(Ordering::Relaxed),
        rejects: s.rejects.load(Ordering::Relaxed),
        campaigns: s.campaigns.load(Ordering::Relaxed),
        cache_hits: s.cache_hits.load(Ordering::Relaxed),
        cache_misses: s.cache_misses.load(Ordering::Relaxed),
        dispatches: s.dispatches.load(Ordering::Relaxed),
        requeues: s.requeues.load(Ordering::Relaxed),
        worker_deaths: s.worker_deaths.load(Ordering::Relaxed),
        workers: state.registry.status(),
    }
}

fn serve_campaign(mut stream: TcpStream, state: &DaemonState, req: CampaignRequest) {
    let _guard = state
        .campaign_lock
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    // The request may have queued behind a long campaign; give the
    // reply write (and nothing else) unlimited patience from here on.
    let _ = stream.set_read_timeout(None);

    let opts = CampaignOpts {
        bench_filter: req.bench_filter,
        split: req.split,
        max_executions: req.max_executions,
        stable: req.stable,
        weaken: req.weaken,
        in_process: false,
        cache_dir: state.opts.cache_dir.clone(),
        sup: state.opts.sup.clone(),
        ..CampaignOpts::default()
    };
    let transport = NetTransport {
        registry: Arc::clone(&state.registry),
    };
    let mut report = Vec::new();
    let reply = match run_campaign_with(&opts, &mut report, Some(Box::new(transport))) {
        Ok(outcome) => {
            let s = &state.stats;
            let sum = &outcome.summary;
            s.cache_hits
                .fetch_add(sum.cache_hits as u64, Ordering::Relaxed);
            s.cache_misses.fetch_add(sum.live as u64, Ordering::Relaxed);
            s.dispatches
                .fetch_add(sum.sup.dispatches, Ordering::Relaxed);
            s.requeues.fetch_add(sum.sup.requeues, Ordering::Relaxed);
            s.worker_deaths
                .fetch_add(sum.sup.worker_deaths, Ordering::Relaxed);
            NetReply::Report {
                code: outcome.code,
                report: String::from_utf8_lossy(&report).into_owned(),
                summary: outcome.summary.render(),
            }
        }
        Err(e) => NetReply::Reject {
            reason: format!("campaign failed: {e}"),
        },
    };
    let _ = write_frame(&mut stream, &reply.encode());
    let served = state.stats.campaigns.fetch_add(1, Ordering::Relaxed) + 1;
    if state.opts.max_campaigns.is_some_and(|max| served >= max) {
        // Unblock the accept loop so the daemon can notice the stop
        // flag and exit cleanly.
        state.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(state.self_addr);
    }
}
