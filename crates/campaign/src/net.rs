//! The networked campaign wire: CRC-guarded frames over TCP, the
//! attach handshake, and the client/worker sides of the daemon
//! protocol.
//!
//! ## Framing
//!
//! The supervisor ⇄ worker protocol ([`crate::proto`]) is
//! newline-delimited JSON; over a pipe the OS guarantees stream
//! integrity, over TCP nothing guards against a half-written buffer
//! from a dying peer. Every payload line therefore travels as one
//! frame:
//!
//! ```text
//! [len: u32 BE] [crc32(payload): u32 BE] [payload bytes]
//! ```
//!
//! A frame that fails *any* check — truncated header, truncated
//! payload, oversized length, CRC mismatch, non-UTF-8 — is
//! [`FrameError::Corrupt`]: the connection is declared dead, exactly
//! like a SIGKILLed subprocess. Corruption can requeue a shard, never
//! misparse into a different message — the same stance the journal and
//! cache take toward torn writes.
//!
//! ## Handshake
//!
//! The first frame on any connection names what the connection is:
//!
//! - a **worker** sends [`NetHello::Attach`] with its protocol version
//!   and the daemon-side benchmark-registry hash; mismatches are
//!   [`NetReply::Reject`]ed (a stale worker binary must not silently
//!   compute different shards).
//! - a **client** sends [`NetHello::Campaign`] (same version/registry
//!   guard) or [`NetHello::Status`].
//!
//! Everything after the handshake is ordinary [`crate::proto`] lines
//! in frames (worker connections) or a single [`NetReply`] frame
//! (client connections).

use crate::hash::{crc32, Fnv1a};
use crate::json::Json;
use crate::proto::{FromWorker, ToWorker};
use crate::wire::spec_hash;
use crate::worker::{execute_run, WorkerOpts, IDLE};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Version of the framed TCP protocol. Bumped on any change to the
/// framing, the handshake, or the [`crate::proto`] message set; the
/// daemon rejects mismatched peers at attach time.
pub const PROTO_VERSION: u64 = 1;

/// Hard cap on a single frame's payload (defense against a corrupt or
/// hostile length word committing us to a multi-gigabyte read). Result
/// lines with large frontiers run to kilobytes; 16 MiB is orders of
/// magnitude of headroom.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The stream died mid-frame or carried a frame that fails
    /// validation (truncation, oversize, CRC mismatch, bad UTF-8).
    /// Indistinguishable from peer death — treated exactly like it.
    Corrupt(String),
    /// The underlying socket read failed.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Encode `payload` as one frame (length + CRC header, then the
/// bytes). Pure function of the payload — shared by the socket writer
/// and the proptest suite.
pub fn frame_bytes(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(8 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(bytes).to_be_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Write one framed payload and flush it.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    w.write_all(&frame_bytes(payload))?;
    w.flush()
}

/// Read one frame. Distinguishes a clean close *between* frames
/// ([`FrameError::Closed`]) from every flavor of mid-frame death or
/// corruption ([`FrameError::Corrupt`]).
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut header = [0u8; 8];
    // First byte by hand: EOF here is a clean close, EOF anywhere later
    // is a truncated frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..])
        .map_err(|_| FrameError::Corrupt("truncated header".into()))?;
    decode_header_and_read(&header, |buf| {
        r.read_exact(buf)
            .map_err(|_| FrameError::Corrupt("truncated payload".into()))
    })
}

/// Shared validation: parse an 8-byte header, obtain the payload via
/// `fill`, check CRC and UTF-8.
fn decode_header_and_read(
    header: &[u8; 8],
    fill: impl FnOnce(&mut [u8]) -> Result<(), FrameError>,
) -> Result<String, FrameError> {
    let len = u32::from_be_bytes(header[0..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_be_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(FrameError::Corrupt(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    fill(&mut payload)?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(FrameError::Corrupt(format!(
            "crc mismatch: header {want_crc:#010x}, payload {got_crc:#010x}"
        )));
    }
    String::from_utf8(payload).map_err(|_| FrameError::Corrupt("payload is not UTF-8".into()))
}

/// Incremental frame decoder over an in-memory byte stream. Feed bytes
/// in arbitrary chunks with [`FrameSplitter::push`], pull complete
/// payloads with [`FrameSplitter::next_frame`]. Exists so the proptest
/// suite can exercise the exact header/CRC/UTF-8 validation logic over
/// arbitrary splits without sockets.
#[derive(Default)]
pub struct FrameSplitter {
    buf: Vec<u8>,
}

impl FrameSplitter {
    /// An empty splitter.
    pub fn new() -> Self {
        FrameSplitter::default()
    }

    /// Append raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, `Ok(None)` if more bytes are
    /// needed. After the first `Err` the stream is dead; behavior of
    /// further calls is unspecified (a real connection is torn down).
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let header: [u8; 8] = self.buf[0..8].try_into().unwrap();
        let len = u32::from_be_bytes(header[0..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Corrupt(format!(
                "frame length {len} exceeds cap {MAX_FRAME}"
            )));
        }
        if self.buf.len() < 8 + len {
            return Ok(None);
        }
        let rest = self.buf.split_off(8 + len);
        let whole = std::mem::replace(&mut self.buf, rest);
        let payload = decode_header_and_read(&header, |buf| {
            buf.copy_from_slice(&whole[8..]);
            Ok(())
        })?;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// FNV fold over every registered benchmark's name and spec hash, in
/// registry order. Two binaries with the same registry hash agree on
/// what every `(bench, shard)` task *means*; the attach handshake
/// rejects anything else, because a worker with a drifted spec would
/// poison the shared result cache with wrong-but-plausible rows.
pub fn registry_hash() -> u64 {
    let mut h = Fnv1a::new();
    for bench in cdsspec_structures::registry::benchmarks() {
        h.update_str(bench.name).update_u64(spec_hash(&bench));
    }
    h.finish()
}

/// Campaign parameters a remote client ships to the daemon — the
/// subset of [`crate::CampaignOpts`] that describes *what to check*.
/// Where results come from (cache, journal, worker pool) is the
/// daemon's business.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignRequest {
    /// Benchmarks to run (registry display names); `None` = all.
    pub bench_filter: Option<Vec<String>>,
    /// Probe execution cap (`0` = no splitting).
    pub split: u64,
    /// Execution cap per task.
    pub max_executions: u64,
    /// Mask wall-clock in the report.
    pub stable: bool,
    /// Ordering sites to weaken before checking.
    pub weaken: Vec<usize>,
}

impl CampaignRequest {
    fn to_json(&self) -> Json {
        let filter = match &self.bench_filter {
            None => Json::Null,
            Some(names) => Json::Arr(names.iter().map(|n| Json::str(n.clone())).collect()),
        };
        Json::obj(vec![
            ("filter", filter),
            ("split", Json::num(self.split)),
            ("max_executions", Json::num(self.max_executions)),
            ("stable", Json::Bool(self.stable)),
            (
                "weaken",
                Json::Arr(self.weaken.iter().map(|&s| Json::num(s as u64)).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<CampaignRequest, String> {
        let bench_filter = match v.get("filter") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(names)) => Some(
                names
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or("non-string filter entry")
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(_) => return Err("filter must be null or an array".into()),
        };
        Ok(CampaignRequest {
            bench_filter,
            split: v
                .get("split")
                .and_then(Json::as_u64)
                .ok_or("campaign missing split")?,
            max_executions: v
                .get("max_executions")
                .and_then(Json::as_u64)
                .ok_or("campaign missing max_executions")?,
            stable: v
                .get("stable")
                .and_then(Json::as_bool)
                .ok_or("campaign missing stable")?,
            weaken: v
                .get("weaken")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|s| s.as_usize().ok_or("non-integer weaken entry"))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// The first frame any connection sends to the daemon.
#[derive(Debug)]
pub enum NetHello {
    /// "I am a worker; use me." Version and registry hashes must match
    /// the daemon's own or the connection is rejected.
    Attach {
        /// The worker's [`PROTO_VERSION`].
        proto: u64,
        /// The worker's [`registry_hash`].
        registry: u64,
        /// The worker's OS pid (diagnostics only).
        pid: u32,
    },
    /// "Run this campaign and send me the report."
    Campaign {
        /// The client's [`PROTO_VERSION`].
        proto: u64,
        /// The client's [`registry_hash`].
        registry: u64,
        /// What to check.
        req: CampaignRequest,
    },
    /// "Describe yourself" (counters; no registry guard — status must
    /// work from any client version that shares the framing).
    Status {
        /// The client's [`PROTO_VERSION`].
        proto: u64,
    },
}

impl NetHello {
    /// Encode to a single JSON line.
    pub fn encode(&self) -> String {
        match self {
            NetHello::Attach {
                proto,
                registry,
                pid,
            } => Json::obj(vec![
                ("msg", Json::str("attach")),
                ("proto", Json::num(*proto)),
                ("registry", Json::Num(*registry as i128)),
                ("pid", Json::num(*pid)),
            ]),
            NetHello::Campaign {
                proto,
                registry,
                req,
            } => Json::obj(vec![
                ("msg", Json::str("campaign")),
                ("proto", Json::num(*proto)),
                ("registry", Json::Num(*registry as i128)),
                ("req", req.to_json()),
            ]),
            NetHello::Status { proto } => Json::obj(vec![
                ("msg", Json::str("status")),
                ("proto", Json::num(*proto)),
            ]),
        }
        .encode()
    }

    /// Decode one line.
    pub fn decode(line: &str) -> Result<NetHello, String> {
        let v = Json::parse(line)?;
        let proto = v
            .get("proto")
            .and_then(Json::as_u64)
            .ok_or("hello missing proto")?;
        let registry = || {
            v.get("registry")
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or("hello missing registry")
        };
        match v.get("msg").and_then(Json::as_str) {
            Some("attach") => Ok(NetHello::Attach {
                proto,
                registry: registry()?,
                pid: v
                    .get("pid")
                    .and_then(Json::as_u64)
                    .and_then(|p| u32::try_from(p).ok())
                    .ok_or("attach missing pid")?,
            }),
            Some("campaign") => Ok(NetHello::Campaign {
                proto,
                registry: registry()?,
                req: CampaignRequest::from_json(v.get("req").ok_or("campaign missing req")?)?,
            }),
            Some("status") => Ok(NetHello::Status { proto }),
            other => Err(format!("unknown hello {other:?}")),
        }
    }
}

/// Per-attached-worker line in a [`StatusReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStatus {
    /// The worker's reported OS pid.
    pub pid: u32,
    /// The worker's remote socket address.
    pub addr: String,
    /// Is the worker currently wired to a supervisor slot?
    pub busy: bool,
}

/// Daemon counters answered to a `Status` request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// The daemon's OS pid.
    pub pid: u32,
    /// Milliseconds since the daemon started listening.
    pub uptime_ms: u64,
    /// Worker attach handshakes accepted since start.
    pub attaches: u64,
    /// Connections rejected (version/registry mismatch, bad hello).
    pub rejects: u64,
    /// Campaigns served since start.
    pub campaigns: u64,
    /// Benchmark rows answered straight from the result cache.
    pub cache_hits: u64,
    /// Benchmark rows that had to be computed live.
    pub cache_misses: u64,
    /// Tasks dispatched to workers across all campaigns.
    pub dispatches: u64,
    /// Tasks requeued after a worker failure.
    pub requeues: u64,
    /// Worker deaths observed (disconnects, kills, lease expiries).
    pub worker_deaths: u64,
    /// Currently attached workers, one entry each (busy = leased to a
    /// running campaign right now).
    pub workers: Vec<WorkerStatus>,
}

impl StatusReport {
    /// Encode to a single JSON line.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("pid", Json::num(self.pid)),
            ("uptime_ms", Json::num(self.uptime_ms)),
            ("attaches", Json::num(self.attaches)),
            ("rejects", Json::num(self.rejects)),
            ("campaigns", Json::num(self.campaigns)),
            ("cache_hits", Json::num(self.cache_hits)),
            ("cache_misses", Json::num(self.cache_misses)),
            ("dispatches", Json::num(self.dispatches)),
            ("requeues", Json::num(self.requeues)),
            ("worker_deaths", Json::num(self.worker_deaths)),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("pid", Json::num(w.pid)),
                                ("addr", Json::str(w.addr.clone())),
                                ("busy", Json::Bool(w.busy)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from JSON.
    pub fn from_json(v: &Json) -> Result<StatusReport, String> {
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("status missing {name}"))
        };
        let workers = v
            .get("workers")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|w| -> Result<WorkerStatus, String> {
                Ok(WorkerStatus {
                    pid: w
                        .get("pid")
                        .and_then(Json::as_u64)
                        .and_then(|p| u32::try_from(p).ok())
                        .ok_or("worker status missing pid")?,
                    addr: w
                        .get("addr")
                        .and_then(Json::as_str)
                        .ok_or("worker status missing addr")?
                        .to_string(),
                    busy: w
                        .get("busy")
                        .and_then(Json::as_bool)
                        .ok_or("worker status missing busy")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StatusReport {
            pid: u32::try_from(field("pid")?).map_err(|_| "pid out of range")?,
            uptime_ms: field("uptime_ms")?,
            attaches: field("attaches")?,
            rejects: field("rejects")?,
            campaigns: field("campaigns")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            dispatches: field("dispatches")?,
            requeues: field("requeues")?,
            worker_deaths: field("worker_deaths")?,
            workers,
        })
    }

    /// Human-readable rendering (`cdsspec-campaign --status` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let busy = self.workers.iter().filter(|w| w.busy).count();
        let _ = writeln!(
            s,
            "cdsspec-netd pid {} up {}s",
            self.pid,
            self.uptime_ms / 1000
        );
        let _ = writeln!(
            s,
            "workers: {} attached ({busy} busy), {} attaches, {} rejected",
            self.workers.len(),
            self.attaches,
            self.rejects
        );
        let _ = writeln!(
            s,
            "campaigns: {} served, cache {} hit(s) / {} miss(es)",
            self.campaigns, self.cache_hits, self.cache_misses
        );
        let _ = writeln!(
            s,
            "dispatch: {} task(s), {} requeue(s), {} worker death(s), {busy} in-flight lease(s)",
            self.dispatches, self.requeues, self.worker_deaths
        );
        for w in &self.workers {
            let _ = writeln!(
                s,
                "  worker pid {} at {}  {}",
                w.pid,
                w.addr,
                if w.busy { "busy" } else { "idle" }
            );
        }
        s
    }
}

/// The daemon's single reply frame on client connections (worker
/// connections get a `Welcome`/`Reject` then switch to proto lines).
#[derive(Debug)]
pub enum NetReply {
    /// Attach accepted; the connection is now a worker link.
    Welcome {
        /// The daemon's OS pid (diagnostics only).
        pid: u32,
    },
    /// Handshake refused; the connection closes after this frame.
    Reject {
        /// Human-readable cause.
        reason: String,
    },
    /// A served campaign's outcome.
    Report {
        /// The campaign's process-style exit code
        /// ([`crate::EXIT_CLEAN`] etc.).
        code: i32,
        /// The rendered report (the bytes `run_campaign` writes to
        /// stdout).
        report: String,
        /// The `campaign-summary:`/`worker-report:` stderr lines.
        summary: String,
    },
    /// Daemon counters.
    Status(StatusReport),
}

impl NetReply {
    /// Encode to a single JSON line.
    pub fn encode(&self) -> String {
        match self {
            NetReply::Welcome { pid } => Json::obj(vec![
                ("msg", Json::str("welcome")),
                ("pid", Json::num(*pid)),
            ]),
            NetReply::Reject { reason } => Json::obj(vec![
                ("msg", Json::str("reject")),
                ("reason", Json::str(reason.clone())),
            ]),
            NetReply::Report {
                code,
                report,
                summary,
            } => Json::obj(vec![
                ("msg", Json::str("report")),
                ("code", Json::num(*code)),
                ("report", Json::str(report.clone())),
                ("summary", Json::str(summary.clone())),
            ]),
            NetReply::Status(status) => Json::obj(vec![
                ("msg", Json::str("status")),
                ("status", status.to_json()),
            ]),
        }
        .encode()
    }

    /// Decode one line.
    pub fn decode(line: &str) -> Result<NetReply, String> {
        let v = Json::parse(line)?;
        match v.get("msg").and_then(Json::as_str) {
            Some("welcome") => Ok(NetReply::Welcome {
                pid: v
                    .get("pid")
                    .and_then(Json::as_u64)
                    .and_then(|p| u32::try_from(p).ok())
                    .ok_or("welcome missing pid")?,
            }),
            Some("reject") => Ok(NetReply::Reject {
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or("reject missing reason")?
                    .to_string(),
            }),
            Some("report") => Ok(NetReply::Report {
                code: v
                    .get("code")
                    .and_then(Json::as_num)
                    .and_then(|n| i32::try_from(n).ok())
                    .ok_or("report missing code")?,
                report: v
                    .get("report")
                    .and_then(Json::as_str)
                    .ok_or("report missing report")?
                    .to_string(),
                summary: v
                    .get("summary")
                    .and_then(Json::as_str)
                    .ok_or("report missing summary")?
                    .to_string(),
            }),
            Some("status") => Ok(NetReply::Status(StatusReport::from_json(
                v.get("status").ok_or("status missing status")?,
            )?)),
            other => Err(format!("unknown daemon reply {other:?}")),
        }
    }
}

/// Ask a daemon for its status.
pub fn request_status(addr: &str) -> Result<StatusReport, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_frame(
        &mut stream,
        &NetHello::Status {
            proto: PROTO_VERSION,
        }
        .encode(),
    )
    .map_err(|e| format!("send failed: {e}"))?;
    let line = read_frame(&mut stream).map_err(|e| format!("daemon hung up: {e}"))?;
    match NetReply::decode(&line)? {
        NetReply::Status(status) => Ok(status),
        NetReply::Reject { reason } => Err(format!("daemon rejected status request: {reason}")),
        other => Err(format!("unexpected daemon reply {other:?}")),
    }
}

/// Run a campaign on a remote daemon: ship the request, stream the
/// report into `out`, and return `(exit code, summary text)` — the
/// summary is the daemon-side `campaign-summary:` block, which the CLI
/// prints to its own stderr so remote runs look exactly like local
/// ones to scripts.
pub fn remote_campaign(
    addr: &str,
    req: &CampaignRequest,
    out: &mut dyn Write,
) -> Result<(i32, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write_frame(
        &mut stream,
        &NetHello::Campaign {
            proto: PROTO_VERSION,
            registry: registry_hash(),
            req: req.clone(),
        }
        .encode(),
    )
    .map_err(|e| format!("send failed: {e}"))?;
    let line = read_frame(&mut stream).map_err(|e| format!("daemon hung up: {e}"))?;
    match NetReply::decode(&line)? {
        NetReply::Report {
            code,
            report,
            summary,
        } => {
            out.write_all(report.as_bytes())
                .map_err(|e| format!("write failed: {e}"))?;
            Ok((code, summary))
        }
        NetReply::Reject { reason } => Err(format!("daemon rejected campaign: {reason}")),
        other => Err(format!("unexpected daemon reply {other:?}")),
    }
}

/// Settings for a TCP attach worker (`cdsspec-campaign --attach`).
#[derive(Clone, Debug)]
pub struct AttachOpts {
    /// Daemon address to attach to.
    pub addr: String,
    /// Task-execution settings (heartbeat interval, explorer threads,
    /// poison fault injection) — identical semantics to the stdio
    /// worker's.
    pub worker: WorkerOpts,
    /// Give up after this long of consecutive failed connection
    /// attempts. A worker that has attached at least once exits 0 when
    /// the budget runs out (the daemon went away — normal shutdown);
    /// one that never attached exits 1.
    pub reconnect_budget: Duration,
}

/// Run a TCP worker: attach to the daemon, serve `Run` dispatches, and
/// reconnect (with backoff) whenever the socket dies. Returns the
/// process exit code.
pub fn attach_worker(opts: &AttachOpts) -> i32 {
    let mut ever_attached = false;
    let mut last_contact = Instant::now();
    let mut backoff = Duration::from_millis(50);
    loop {
        let stream = match TcpStream::connect(&opts.addr) {
            Ok(s) => s,
            Err(e) => {
                if last_contact.elapsed() >= opts.reconnect_budget {
                    if !ever_attached {
                        eprintln!("cdsspec-campaign worker: cannot reach {}: {e}", opts.addr);
                    }
                    return i32::from(!ever_attached);
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
                continue;
            }
        };
        backoff = Duration::from_millis(50);
        match serve_connection(stream, opts) {
            ServeEnd::Exit => return 0,
            ServeEnd::Rejected => return 1,
            ServeEnd::Disconnected { attached } => {
                if attached {
                    ever_attached = true;
                    last_contact = Instant::now();
                }
                // Loop: the daemon may come back, or the budget expires.
            }
        }
    }
}

enum ServeEnd {
    /// The daemon sent `Exit` (it has no further use for us).
    Exit,
    /// The daemon refused the handshake — retrying cannot help (wrong
    /// version or registry; a restart of the same binaries would
    /// mismatch again).
    Rejected,
    /// The socket died; maybe reconnect.
    Disconnected {
        /// Did the handshake complete on this connection?
        attached: bool,
    },
}

fn serve_connection(stream: TcpStream, opts: &AttachOpts) -> ServeEnd {
    let mut reader = stream;
    let Ok(writer) = reader.try_clone() else {
        return ServeEnd::Disconnected { attached: false };
    };
    let writer = Arc::new(Mutex::new(writer));
    let send = |msg: &FromWorker| -> bool {
        let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
        write_frame(&mut *w, &msg.encode()).is_ok()
    };

    let hello = NetHello::Attach {
        proto: PROTO_VERSION,
        registry: registry_hash(),
        pid: std::process::id(),
    };
    {
        let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
        if write_frame(&mut *w, &hello.encode()).is_err() {
            return ServeEnd::Disconnected { attached: false };
        }
    }
    match read_frame(&mut reader) {
        Ok(line) => match NetReply::decode(&line) {
            Ok(NetReply::Welcome { .. }) => {}
            Ok(NetReply::Reject { reason }) => {
                eprintln!("cdsspec-campaign worker: attach rejected: {reason}");
                return ServeEnd::Rejected;
            }
            _ => return ServeEnd::Disconnected { attached: false },
        },
        Err(_) => return ServeEnd::Disconnected { attached: false },
    }

    // Heartbeat thread for this connection's lifetime. Send failures
    // are ignored here — the serve loop notices the dead socket on its
    // next read and tears the connection down.
    let current = Arc::new(AtomicU64::new(IDLE));
    let stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let current = Arc::clone(&current);
        let stop = Arc::clone(&stop);
        let writer = Arc::clone(&writer);
        let interval = opts.worker.heartbeat;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                let task = current.load(Ordering::Relaxed);
                if task != IDLE {
                    let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                    let _ = write_frame(&mut *w, &FromWorker::Heartbeat { task }.encode());
                }
            }
        })
    };
    let end = loop {
        let line = match read_frame(&mut reader) {
            Ok(line) => line,
            Err(_) => break ServeEnd::Disconnected { attached: true },
        };
        match ToWorker::decode(&line) {
            Ok(ToWorker::Run {
                task,
                bench,
                shard,
                config,
                weaken,
            }) => {
                let reply = execute_run(task, bench, shard, config, weaken, &opts.worker, &current);
                if !send(&reply) {
                    break ServeEnd::Disconnected { attached: true };
                }
            }
            Ok(ToWorker::Exit) => break ServeEnd::Exit,
            Err(e) => {
                eprintln!("cdsspec-campaign worker: bad daemon message: {e}");
                break ServeEnd::Disconnected { attached: true };
            }
        }
    };
    stop.store(true, Ordering::Relaxed);
    let _ = reader.shutdown(std::net::Shutdown::Both);
    let _ = hb.join();
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_cursor() {
        for payload in ["", "x", "{\"msg\":\"hello\",\"pid\":1}", "π — non-ascii"] {
            let bytes = frame_bytes(payload);
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), payload);
            assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_not_misparsed() {
        let mut bytes = frame_bytes("{\"msg\":\"heartbeat\",\"task\":4}");
        // Flip a payload bit: CRC must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Corrupt(_))
        ));

        // Truncated payload.
        let mut bytes = frame_bytes("hello");
        bytes.truncate(bytes.len() - 2);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Corrupt(_))
        ));

        // Truncated header.
        let mut cursor = std::io::Cursor::new(vec![0u8; 5]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Corrupt(_))
        ));

        // Oversized length word.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Corrupt(_))
        ));
    }

    #[test]
    fn splitter_reassembles_across_arbitrary_chunks() {
        let payloads = ["first", "", "third with spaces"];
        let mut stream = Vec::new();
        for p in payloads {
            stream.extend_from_slice(&frame_bytes(p));
        }
        // Push one byte at a time: worst-case fragmentation.
        let mut splitter = FrameSplitter::new();
        let mut got = Vec::new();
        for b in stream {
            splitter.push(&[b]);
            while let Some(p) = splitter.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(splitter.pending(), 0);
    }

    #[test]
    fn hello_and_reply_round_trip() {
        let req = CampaignRequest {
            bench_filter: Some(vec!["SPSC Queue".into(), "RCU".into()]),
            split: 500,
            max_executions: 10_000,
            stable: true,
            weaken: vec![2, 0],
        };
        for hello in [
            NetHello::Attach {
                proto: PROTO_VERSION,
                registry: registry_hash(),
                pid: 42,
            },
            NetHello::Campaign {
                proto: PROTO_VERSION,
                registry: registry_hash(),
                req: req.clone(),
            },
            NetHello::Status {
                proto: PROTO_VERSION,
            },
        ] {
            let line = hello.encode();
            assert!(!line.contains('\n'));
            let back = NetHello::decode(&line).unwrap();
            assert_eq!(format!("{back:?}"), format!("{hello:?}"));
        }
        let status = StatusReport {
            pid: 7,
            uptime_ms: 1234,
            attaches: 3,
            rejects: 1,
            campaigns: 2,
            cache_hits: 10,
            cache_misses: 5,
            dispatches: 40,
            requeues: 2,
            worker_deaths: 1,
            workers: vec![WorkerStatus {
                pid: 99,
                addr: "127.0.0.1:5000".into(),
                busy: true,
            }],
        };
        for reply in [
            NetReply::Welcome { pid: 1 },
            NetReply::Reject {
                reason: "protocol version 0 != 1".into(),
            },
            NetReply::Report {
                code: 2,
                report: "Structure ...\nTotal: 1\n".into(),
                summary: "campaign-summary: benches=1\n".into(),
            },
            NetReply::Status(status.clone()),
        ] {
            let line = reply.encode();
            assert!(!line.contains('\n'));
            let back = NetReply::decode(&line).unwrap();
            assert_eq!(format!("{back:?}"), format!("{reply:?}"));
        }
        assert!(status.render().contains("1 attached (1 busy)"));
        assert!(status.render().contains("cache 10 hit(s) / 5 miss(es)"));
    }

    #[test]
    fn registry_hash_is_stable_within_a_build() {
        assert_eq!(registry_hash(), registry_hash());
        assert_ne!(registry_hash(), 0);
    }
}
