//! JSON encodings of the model-checker vocabulary ([`Stats`],
//! [`ShardSpec`], the semantic subset of [`Config`]) plus the stable
//! content hashes the result cache keys on.
//!
//! Encoding is deterministic (see [`crate::json`]): the same `Stats`
//! always serializes to the same bytes, which is what lets the cache
//! byte-identity guarantee and the journal CRCs work.

use crate::hash::{fnv1a64, Fnv1a};
use crate::json::Json;
use cdsspec_mc::{Bug, BugCategory, Config, FoundBug, ShardSpec, Stats, StopReason};
use cdsspec_structures::registry::Benchmark;
use std::time::Duration;

/// Stable text label of a [`StopReason`] (mirrors its `Display`).
pub fn stop_label(stop: StopReason) -> &'static str {
    match stop {
        StopReason::Exhausted => "exhausted",
        StopReason::FirstBug => "first-bug",
        StopReason::ExecutionCap => "execution-cap",
        StopReason::Deadline => "deadline",
        StopReason::Errored => "errored",
    }
}

/// Inverse of [`stop_label`].
pub fn stop_from_label(s: &str) -> Option<StopReason> {
    Some(match s {
        "exhausted" => StopReason::Exhausted,
        "first-bug" => StopReason::FirstBug,
        "execution-cap" => StopReason::ExecutionCap,
        "deadline" => StopReason::Deadline,
        "errored" => StopReason::Errored,
        _ => return None,
    })
}

/// Stable text label of a [`BugCategory`] (the checkpoint format's
/// spelling).
pub fn category_label(cat: BugCategory) -> &'static str {
    match cat {
        BugCategory::BuiltIn => "builtin",
        BugCategory::Admissibility => "admissibility",
        BugCategory::Assertion => "assertion",
        BugCategory::Internal => "internal",
    }
}

/// Inverse of [`category_label`].
pub fn category_from_label(s: &str) -> Option<BugCategory> {
    Some(match s {
        "builtin" => BugCategory::BuiltIn,
        "admissibility" => BugCategory::Admissibility,
        "assertion" => BugCategory::Assertion,
        "internal" => BugCategory::Internal,
        _ => return None,
    })
}

/// Encode a frontier shard.
pub fn shard_to_json(shard: &ShardSpec) -> Json {
    Json::obj(vec![
        ("floor", Json::num(shard.floor as u64)),
        (
            "script",
            Json::Arr(shard.script.iter().map(|&c| Json::num(c as u64)).collect()),
        ),
    ])
}

/// Decode a frontier shard.
pub fn shard_from_json(v: &Json) -> Result<ShardSpec, String> {
    let floor = v
        .get("floor")
        .and_then(Json::as_usize)
        .ok_or("shard missing floor")?;
    let script = v
        .get("script")
        .and_then(Json::as_arr)
        .ok_or("shard missing script")?
        .iter()
        .map(|c| c.as_usize().ok_or("non-integer script entry"))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ShardSpec { floor, script })
}

/// A stable one-line identity for a shard + execution cap, used as the
/// journal's task key so a resumed campaign can recognize work it has
/// already completed.
pub fn task_key(bench: &str, shard: &ShardSpec, max_executions: u64) -> String {
    let script: Vec<String> = shard.script.iter().map(|c| c.to_string()).collect();
    format!(
        "{bench}|{floor}|{script}|{max_executions}",
        floor = shard.floor,
        script = script.join(",")
    )
}

/// Encode exploration statistics. Traces are dropped (they are diagnostic
/// bulk, not results); bugs keep their category, rendered message,
/// execution index, worker, and shard, which is everything report
/// rendering and dedup use.
pub fn stats_to_json(stats: &Stats) -> Json {
    let bugs = stats
        .bugs
        .iter()
        .map(|b| {
            Json::obj(vec![
                ("category", Json::str(category_label(b.bug.category()))),
                ("message", Json::str(b.bug.to_string())),
                ("execution", Json::num(b.execution)),
                ("worker", Json::num(b.worker as u64)),
                (
                    "shard",
                    Json::Arr(b.shard.iter().map(|&c| Json::num(c as u64)).collect()),
                ),
            ])
        })
        .collect();
    let shards = stats.frontier_shards().iter().map(shard_to_json).collect();
    // `rf_classes` is a BTreeSet, so the array is sorted — part of the
    // deterministic-encoding guarantee the cache's byte identity needs.
    let classes = stats.rf_classes.iter().map(|&c| Json::num(c)).collect();
    Json::obj(vec![
        ("executions", Json::num(stats.executions)),
        ("feasible", Json::num(stats.feasible)),
        ("diverged", Json::num(stats.diverged)),
        ("sleep_pruned", Json::num(stats.sleep_pruned)),
        ("sampled", Json::num(stats.sampled)),
        ("executions_pruned", Json::num(stats.executions_pruned)),
        ("rf_classes", Json::Arr(classes)),
        ("peak_depth", Json::num(stats.peak_depth)),
        ("elapsed_ns", Json::Num(stats.elapsed.as_nanos() as i128)),
        ("stop", Json::str(stop_label(stats.stop))),
        ("bugs", Json::Arr(bugs)),
        ("shards", Json::Arr(shards)),
    ])
}

/// Decode exploration statistics. Bugs come back as [`Bug::Restored`]
/// (category + message), which renders identically to the live bug — the
/// dedup and report-identity invariant the cache depends on.
pub fn stats_from_json(v: &Json) -> Result<Stats, String> {
    let num = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("stats missing {key}"))
    };
    let mut stats = Stats {
        executions: num("executions")?,
        feasible: num("feasible")?,
        diverged: num("diverged")?,
        sleep_pruned: num("sleep_pruned")?,
        sampled: num("sampled")?,
        peak_depth: num("peak_depth")?,
        ..Stats::default()
    };
    // Absent in pre-rf-prune journals: read back as zero/empty rather
    // than failing, so old journal tails still decode.
    stats.executions_pruned = v
        .get("executions_pruned")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if let Some(classes) = v.get("rf_classes").and_then(Json::as_arr) {
        for c in classes {
            stats
                .rf_classes
                .insert(c.as_u64().ok_or("non-integer rf class")?);
        }
    }
    let ns = v
        .get("elapsed_ns")
        .and_then(Json::as_num)
        .ok_or("stats missing elapsed_ns")?;
    let ns = u128::try_from(ns).map_err(|_| "negative elapsed_ns")?;
    stats.elapsed = Duration::from_nanos(ns.min(u64::MAX as u128) as u64);
    stats.stop = v
        .get("stop")
        .and_then(Json::as_str)
        .and_then(stop_from_label)
        .ok_or("stats missing/unknown stop")?;
    for b in v
        .get("bugs")
        .and_then(Json::as_arr)
        .ok_or("stats missing bugs")?
    {
        let category = b
            .get("category")
            .and_then(Json::as_str)
            .and_then(category_from_label)
            .ok_or("bug missing/unknown category")?;
        let message = b
            .get("message")
            .and_then(Json::as_str)
            .ok_or("bug missing message")?
            .to_string();
        let shard = b
            .get("shard")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|c| c.as_usize().ok_or("non-integer bug shard entry"))
            .collect::<Result<Vec<_>, _>>()?;
        stats.bugs.push(FoundBug {
            bug: Bug::Restored { category, message },
            execution: b.get("execution").and_then(Json::as_u64).unwrap_or(0),
            trace: String::new(),
            worker: b.get("worker").and_then(Json::as_usize).unwrap_or(0),
            shard,
        });
    }
    let shards = v
        .get("shards")
        .and_then(Json::as_arr)
        .ok_or("stats missing shards")?
        .iter()
        .map(shard_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    stats.set_frontier_shards(shards);
    Ok(stats)
}

/// Encode the *semantic* subset of a [`Config`]: every knob that can
/// change what an exploration computes. Deliberately excluded — and
/// therefore free to differ between cache hits — are `workers` and
/// `steal_batch` (parallelism changes wall-clock, not results: the PR 2
/// partition invariant), `fiber_hosting` and `fiber_stack` (pure hosting
/// knobs: the fiber and OS-thread hosts walk the identical DFS at any
/// non-overflowing stack size, pinned by `tests/fiber_equivalence.rs`),
/// `verbose` (output only), and the
/// `resume_*` channels (per-task inputs, carried separately by the wire
/// protocol).
pub fn config_to_json(config: &Config) -> Json {
    let opt_ns = |d: Option<Duration>| match d {
        Some(d) => Json::Num(d.as_nanos() as i128),
        None => Json::Null,
    };
    Json::obj(vec![
        (
            "max_steps_per_thread",
            Json::num(config.max_steps_per_thread),
        ),
        ("max_spins", Json::num(config.max_spins)),
        ("max_futile_reads", Json::num(config.max_futile_reads)),
        ("max_executions", Json::num(config.max_executions)),
        ("time_budget_ns", opt_ns(config.time_budget)),
        ("hang_timeout_ns", opt_ns(config.hang_timeout)),
        ("deadline_samples", Json::num(config.deadline_samples)),
        ("sample_seed", Json::num(config.sample_seed)),
        ("max_threads", Json::num(config.max_threads)),
        ("sleep_sets", Json::Bool(config.sleep_sets)),
        ("stop_on_first_bug", Json::Bool(config.stop_on_first_bug)),
        ("validate_axioms", Json::Bool(config.validate_axioms)),
        ("debug_audit", Json::Bool(config.debug_audit)),
        // Semantic: pruning preserves the bug set but changes the
        // execution counters, so cached results must not cross the knob.
        ("rf_prune", Json::Bool(config.rf_prune)),
    ])
}

/// Decode a semantic config over [`Config::default`]. The caller decides
/// `workers` and the resume channels; they are not on the wire.
pub fn config_from_json(v: &Json) -> Result<Config, String> {
    let mut config = Config::default();
    let num = |key: &str| {
        v.get(key)
            .and_then(Json::as_num)
            .ok_or(format!("config missing {key}"))
    };
    let opt_ns = |key: &str| -> Result<Option<Duration>, String> {
        match v.get(key) {
            Some(Json::Null) | None => Ok(None),
            Some(n) => {
                let ns = n.as_num().ok_or(format!("bad config {key}"))?;
                let ns = u128::try_from(ns).map_err(|_| format!("negative config {key}"))?;
                Ok(Some(Duration::from_nanos(ns.min(u64::MAX as u128) as u64)))
            }
        }
    };
    config.max_steps_per_thread = num("max_steps_per_thread")? as u32;
    config.max_spins = num("max_spins")? as u32;
    config.max_futile_reads = num("max_futile_reads")? as u32;
    config.max_executions = num("max_executions")? as u64;
    config.time_budget = opt_ns("time_budget_ns")?;
    config.hang_timeout = opt_ns("hang_timeout_ns")?;
    config.deadline_samples = num("deadline_samples")? as u64;
    config.sample_seed = num("sample_seed")? as u64;
    config.max_threads = num("max_threads")? as u32;
    config.sleep_sets = v
        .get("sleep_sets")
        .and_then(Json::as_bool)
        .ok_or("config missing sleep_sets")?;
    config.stop_on_first_bug = v
        .get("stop_on_first_bug")
        .and_then(Json::as_bool)
        .ok_or("config missing stop_on_first_bug")?;
    config.validate_axioms = v
        .get("validate_axioms")
        .and_then(Json::as_bool)
        .ok_or("config missing validate_axioms")?;
    // Pre-rf-prune encodings lack the key; they were produced by builds
    // where pruning did not exist, i.e. it was off.
    config.rf_prune = v.get("rf_prune").and_then(Json::as_bool).unwrap_or(false);
    // Pre-auditor encodings lack the key; the auditor defaults on.
    config.debug_audit = v.get("debug_audit").and_then(Json::as_bool).unwrap_or(true);
    Ok(config)
}

/// Content hash of a config's semantic subset — one of the three parts of
/// a cache key. Two configs with the same hash explore the same
/// executions and report the same counters (at any worker count).
pub fn config_hash(config: &Config) -> u64 {
    fnv1a64(config_to_json(config).encode().as_bytes())
}

/// Content hash of a benchmark's specification surface: its name, spec
/// metadata, and the full ordering-site table (names, default orderings,
/// kinds). If any of those change in the source, cached results for the
/// old spec stop matching — the cache can never serve stale science.
pub fn spec_hash(bench: &Benchmark) -> u64 {
    let mut h = Fnv1a::new();
    h.update_str(bench.name)
        .update_u64(bench.meta.methods as u64)
        .update_u64(bench.meta.admissibility_rules as u64)
        .update_u64(bench.meta.ordering_point_annotations as u64)
        .update_u64(bench.sites.len() as u64);
    for site in bench.sites {
        h.update_str(site.name)
            .update_str(&format!("{:?}", site.default))
            .update_str(&format!("{:?}", site.kind));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> Stats {
        let mut stats = Stats {
            executions: 100,
            feasible: 60,
            diverged: 30,
            sleep_pruned: 10,
            sampled: 4,
            executions_pruned: 40,
            peak_depth: 12,
            elapsed: Duration::from_nanos(1_234_567_890),
            stop: StopReason::ExecutionCap,
            bugs: vec![FoundBug {
                bug: Bug::Restored {
                    category: BugCategory::Assertion,
                    message: "post\ncondition \"failed\"".into(),
                },
                execution: 7,
                trace: String::new(),
                worker: 2,
                shard: vec![1, 0],
            }],
            ..Stats::default()
        };
        // Include a signature above i64::MAX: FNV values use the full
        // u64 range and must survive the i128 wire representation.
        stats.rf_classes.extend([3, u64::MAX - 1, 7]);
        stats.set_frontier_shards(vec![
            ShardSpec {
                floor: 2,
                script: vec![0, 1, 3],
            },
            ShardSpec {
                floor: 0,
                script: vec![],
            },
        ]);
        stats
    }

    #[test]
    fn stats_round_trip() {
        let stats = sample_stats();
        let back = stats_from_json(&stats_to_json(&stats)).expect("round trips");
        assert_eq!(back.executions, stats.executions);
        assert_eq!(back.feasible, stats.feasible);
        assert_eq!(back.diverged, stats.diverged);
        assert_eq!(back.sleep_pruned, stats.sleep_pruned);
        assert_eq!(back.sampled, stats.sampled);
        assert_eq!(back.executions_pruned, stats.executions_pruned);
        assert_eq!(back.rf_classes, stats.rf_classes);
        assert_eq!(back.peak_depth, stats.peak_depth);
        assert_eq!(back.elapsed, stats.elapsed);
        assert_eq!(back.stop, stats.stop);
        assert_eq!(back.shard_frontiers, stats.shard_frontiers);
        assert_eq!(back.frontier, stats.frontier);
        assert_eq!(back.bugs.len(), 1);
        assert_eq!(back.bugs[0].bug.to_string(), stats.bugs[0].bug.to_string());
        assert_eq!(back.bugs[0].bug.category(), BugCategory::Assertion);
        assert_eq!(back.bugs[0].execution, 7);
        assert_eq!(back.bugs[0].worker, 2);
        assert_eq!(back.bugs[0].shard, vec![1, 0]);
    }

    #[test]
    fn exhausted_stats_keep_empty_frontier() {
        let stats = Stats {
            executions: 18,
            feasible: 18,
            stop: StopReason::Exhausted,
            ..Stats::default()
        };
        let back = stats_from_json(&stats_to_json(&stats)).unwrap();
        assert_eq!(back.frontier, None);
        assert!(back.shard_frontiers.is_empty());
    }

    #[test]
    fn encoding_is_deterministic() {
        let stats = sample_stats();
        assert_eq!(
            stats_to_json(&stats).encode(),
            stats_to_json(&stats).encode()
        );
    }

    #[test]
    fn config_round_trip_and_hash() {
        let config = Config {
            max_executions: 123,
            time_budget: Some(Duration::from_millis(250)),
            sample_seed: 42,
            ..Config::default()
        };
        let back = config_from_json(&config_to_json(&config)).expect("round trips");
        assert_eq!(config_hash(&back), config_hash(&config));

        // Parallelism and transport knobs do not change the hash
        // (results are worker-count and host independent)...
        let mut parallel = config.clone();
        parallel.workers = 8;
        parallel.steal_batch = 4;
        assert_eq!(config_hash(&parallel), config_hash(&config));
        let mut pooled = config.clone();
        pooled.fiber_hosting = false;
        assert_eq!(config_hash(&pooled), config_hash(&config));

        // ...but semantic knobs do. Pruning changes the execution
        // counters, so cached results must not cross the knob.
        let mut other = config.clone();
        other.max_executions = 124;
        assert_ne!(config_hash(&other), config_hash(&config));
        let mut unpruned = config.clone();
        unpruned.rf_prune = false;
        assert_ne!(config_hash(&unpruned), config_hash(&config));
    }

    /// Encodings from builds that predate rf-equivalence pruning decode
    /// with the counters zero/empty and the knob off (that is what those
    /// builds computed).
    #[test]
    fn pre_rf_prune_encodings_still_decode() {
        let mut stats_json = stats_to_json(&sample_stats());
        let mut config_json = config_to_json(&Config::default());
        for json in [&mut stats_json, &mut config_json] {
            if let Json::Obj(pairs) = json {
                pairs.retain(|(k, _)| {
                    k != "executions_pruned" && k != "rf_classes" && k != "rf_prune"
                });
            }
        }
        let stats = stats_from_json(&stats_json).expect("legacy stats decode");
        assert_eq!(stats.executions_pruned, 0);
        assert!(stats.rf_classes.is_empty());
        let config = config_from_json(&config_json).expect("legacy config decode");
        assert!(!config.rf_prune);
    }

    #[test]
    fn stop_and_category_labels_round_trip() {
        for stop in [
            StopReason::Exhausted,
            StopReason::FirstBug,
            StopReason::ExecutionCap,
            StopReason::Deadline,
            StopReason::Errored,
        ] {
            assert_eq!(stop_from_label(stop_label(stop)), Some(stop));
            // Mirrors the checkpoint format's Display spelling.
            assert_eq!(stop_label(stop), stop.to_string());
        }
        for cat in [
            BugCategory::BuiltIn,
            BugCategory::Admissibility,
            BugCategory::Assertion,
            BugCategory::Internal,
        ] {
            assert_eq!(category_from_label(category_label(cat)), Some(cat));
        }
    }

    #[test]
    fn spec_hashes_are_distinct_per_benchmark() {
        let benches = cdsspec_structures::registry::benchmarks();
        let mut hashes: Vec<u64> = benches.iter().map(spec_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), benches.len(), "spec hashes collide");
    }

    #[test]
    fn task_keys_are_distinct() {
        let a = task_key(
            "X",
            &ShardSpec {
                floor: 1,
                script: vec![2],
            },
            10,
        );
        let b = task_key(
            "X",
            &ShardSpec {
                floor: 1,
                script: vec![2],
            },
            11,
        );
        let c = task_key(
            "X",
            &ShardSpec {
                floor: 0,
                script: vec![1, 2],
            },
            10,
        );
        let d = task_key(
            "Y",
            &ShardSpec {
                floor: 1,
                script: vec![2],
            },
            10,
        );
        let keys = [a.clone(), b, c, d];
        let mut dedup = keys.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
        assert_eq!(a, "X|1|2|10");
    }
}
