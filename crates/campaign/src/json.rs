//! A minimal JSON value, writer, and parser.
//!
//! The build environment has no crates registry, so `serde` is out of
//! reach; the campaign layer needs only a small, deterministic subset of
//! JSON for its wire protocol, journal records, and cache entries:
//!
//! - Numbers are **integers only** (`i128`), which losslessly carries
//!   every counter in a [`cdsspec_mc::Stats`] including the `u128`
//!   nanosecond clock. The campaign formats never need floats, and
//!   avoiding them sidesteps float-formatting non-determinism.
//! - Object keys keep their insertion order, so encoding is
//!   deterministic: the same value always serializes to the same bytes
//!   (required for CRC framing and byte-identity tests).
//! - The writer emits no insignificant whitespace and escapes every
//!   control character, so any encoded value is a single line — the
//!   invariant the newline-delimited worker protocol relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value (integers only; see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (JSON numbers with fractions or exponents are rejected).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value from anything that fits in `i128`.
    pub fn num(n: impl Into<i128>) -> Json {
        Json::Num(n.into())
    }

    /// Look up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i128`, if it is a number.
    pub fn as_num(&self) -> Option<i128> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_num().and_then(|n| u64::try_from(n).ok())
    }

    /// The value as a `usize`, if it is a number in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_num().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string (no insignificant
    /// whitespace, all control characters escaped).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must be a single value, integers only).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            let mut seen: BTreeMap<String, ()> = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                if seen.insert(key.clone(), ()).is_some() {
                    return Err(format!("duplicate object key {key:?}"));
                }
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}", pos = *pos));
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!(
            "unexpected byte {:?} at offset {pos}",
            b as char,
            pos = *pos
        )),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!(
            "non-integer number at offset {start} (campaign JSON is integer-only)"
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<i128>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs never occur in our own output
                        // (the writer only \u-escapes control chars); map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar. `bytes` came from a &str, so
                // boundaries are valid; find the char at this offset.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return Err(format!(
                        "unescaped control character at offset {pos}",
                        pos = *pos
                    ));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let text = v.encode();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(&back, v, "round trip of {text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Json::Null);
        round_trip(&Json::Bool(true));
        round_trip(&Json::Bool(false));
        round_trip(&Json::Num(0));
        round_trip(&Json::Num(-1));
        round_trip(&Json::Num(i128::MAX));
        round_trip(&Json::Num(i128::MIN));
        round_trip(&Json::str(""));
        round_trip(&Json::str("plain"));
        round_trip(&Json::str("esc \" \\ \n \r \t \u{1} \u{7f} ünïcode 🦀"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Json::Arr(vec![]));
        round_trip(&Json::Obj(vec![]));
        round_trip(&Json::obj(vec![
            ("a", Json::num(1u64)),
            ("b", Json::Arr(vec![Json::Null, Json::str("x")])),
            ("nested", Json::obj(vec![("k", Json::Bool(false))])),
        ]));
    }

    #[test]
    fn encoding_is_single_line_and_deterministic() {
        let v = Json::obj(vec![
            ("msg", Json::str("line1\nline2\u{0}")),
            ("n", Json::num(7u64)),
        ]);
        let a = v.encode();
        let b = v.encode();
        assert_eq!(a, b);
        assert!(!a.contains('\n'), "{a}");
        assert_eq!(a, r#"{"msg":"line1\nline2\u0000","n":7}"#);
    }

    #[test]
    fn u128_nanoseconds_survive() {
        let ns: u128 = (u64::MAX as u128) * 3;
        let v = Json::Num(ns as i128);
        let back = Json::parse(&v.encode()).unwrap();
        assert_eq!(back.as_num(), Some(ns as i128));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1.5").is_err(), "floats are rejected");
        assert!(Json::parse("1e3").is_err(), "exponents are rejected");
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} {}").is_err(), "trailing bytes");
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![
            ("s", Json::str("x")),
            ("n", Json::num(3u64)),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![Json::num(1u64)])),
        ]);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(-1).as_u64(), None, "negative is not u64");
    }
}
