//! The content-addressed result cache.
//!
//! A campaign's answer for one benchmark is fully determined by three
//! things: which structure was checked, what its specification looked
//! like, and the semantic exploration config. The cache keys on exactly
//! that triple — `(structure name, spec hash, config hash)` — so a cached
//! entry can *never* answer for a different spec or config, and editing a
//! benchmark's spec or site table invalidates its entries automatically
//! (the hash moves, the old file is simply never looked up again).
//!
//! Entries are single files written atomically (temp + fsync + rename)
//! containing a CRC-guarded JSON encoding of the merged [`Stats`]. A
//! corrupt entry — bad header, bad CRC, undecodable payload — is treated
//! as a miss and deleted, never an error: the cache is an accelerator,
//! not a source of truth.

use crate::error::ParseError;
use crate::fsio::write_atomic;
use crate::hash::{crc32, fnv1a64};
use crate::json::Json;
use crate::wire::{stats_from_json, stats_to_json};
use cdsspec_mc::Stats;
use std::path::{Path, PathBuf};

/// First line of every cache entry file.
const ENTRY_MAGIC: &str = "cdsspec-result v1";

/// Identity of one cached result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Benchmark display name (registry spelling).
    pub structure: String,
    /// [`crate::wire::spec_hash`] of the benchmark.
    pub spec_hash: u64,
    /// [`crate::wire::config_hash`] of the campaign config.
    pub config_hash: u64,
}

impl CacheKey {
    /// The entry's file name: three 16-hex-digit hashes. The structure
    /// name is folded through FNV so arbitrary display names (spaces,
    /// unicode) never meet the filesystem.
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}-{:016x}-{:016x}.result",
            fnv1a64(self.structure.as_bytes()),
            self.spec_hash,
            self.config_hash
        )
    }
}

/// An on-disk result cache rooted at one directory.
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: &Path) -> Result<ResultCache, ParseError> {
        std::fs::create_dir_all(dir).map_err(|error| ParseError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Look up a cached result. Any defect in the entry (missing, foreign
    /// header, CRC mismatch, undecodable stats) is a miss; defective
    /// entries are deleted so they cannot shadow a future store.
    pub fn lookup(&self, key: &CacheKey) -> Option<Stats> {
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match parse_entry(&text) {
            Some(stats) => Some(stats),
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Store a result atomically. The entry lands fully formed or not at
    /// all — a crash mid-store leaves the previous entry (or no entry),
    /// never a torn file.
    pub fn store(&self, key: &CacheKey, stats: &Stats) -> Result<(), ParseError> {
        let payload = stats_to_json(stats).encode();
        let text = format!(
            "{ENTRY_MAGIC}\n{:08x}\n{payload}\n",
            crc32(payload.as_bytes())
        );
        let path = self.entry_path(key);
        write_atomic(&path, text.as_bytes()).map_err(|error| ParseError::Io { path, error })
    }
}

fn parse_entry(text: &str) -> Option<Stats> {
    let mut lines = text.lines();
    if lines.next()? != ENTRY_MAGIC {
        return None;
    }
    let crc = u32::from_str_radix(lines.next()?, 16).ok()?;
    let payload = lines.next()?;
    if lines.next().is_some() || crc32(payload.as_bytes()) != crc {
        return None;
    }
    stats_from_json(&Json::parse(payload).ok()?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsspec_mc::StopReason;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("cdsspec-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(&dir).unwrap()
    }

    fn key() -> CacheKey {
        CacheKey {
            structure: "SPSC Queue".into(),
            spec_hash: 0xabcd,
            config_hash: 0x1234,
        }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = temp_cache("roundtrip");
        let stats = Stats {
            executions: 18,
            feasible: 18,
            peak_depth: 7,
            stop: StopReason::Exhausted,
            elapsed: std::time::Duration::from_millis(5),
            ..Stats::default()
        };
        assert!(cache.lookup(&key()).is_none(), "cold cache misses");
        cache.store(&key(), &stats).unwrap();
        let hit = cache.lookup(&key()).expect("hit after store");
        assert_eq!(hit.executions, 18);
        assert_eq!(hit.stop, StopReason::Exhausted);
        assert_eq!(hit.elapsed, stats.elapsed);
    }

    #[test]
    fn different_key_components_miss() {
        let cache = temp_cache("keys");
        cache.store(&key(), &Stats::default()).unwrap();
        for other in [
            CacheKey {
                structure: "MPMC Queue".into(),
                ..key()
            },
            CacheKey {
                spec_hash: key().spec_hash + 1,
                ..key()
            },
            CacheKey {
                config_hash: key().config_hash + 1,
                ..key()
            },
        ] {
            assert!(cache.lookup(&other).is_none(), "{other:?} must miss");
        }
    }

    #[test]
    fn corrupt_entry_is_a_miss_and_removed() {
        let cache = temp_cache("corrupt");
        cache.store(&key(), &Stats::default()).unwrap();
        let path = cache.entry_path(&key());
        // Flip a payload byte without fixing the CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 5;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.lookup(&key()).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry must be removed");
        // And a fresh store works again.
        cache.store(&key(), &Stats::default()).unwrap();
        assert!(cache.lookup(&key()).is_some());
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let cache = temp_cache("truncated");
        cache.store(&key(), &Stats::default()).unwrap();
        let path = cache.entry_path(&key());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.lookup(&key()).is_none());
    }
}
