//! The supervisor ⇄ worker wire protocol.
//!
//! Newline-delimited JSON over the worker's stdin (supervisor → worker)
//! and stdout (worker → supervisor). Every message is one line; the
//! encoder guarantees no embedded newlines (see [`crate::json`]). A
//! malformed line from a worker is treated like worker death — the
//! supervisor kills the process and requeues its lease — so protocol
//! corruption can never corrupt campaign results.

use crate::json::Json;
use crate::wire::{
    config_from_json, config_to_json, shard_from_json, shard_to_json, stats_from_json,
    stats_to_json,
};
use cdsspec_mc::{Config, ShardSpec, Stats};

/// Supervisor → worker.
// One short-lived value per dispatch; boxing `Run`'s payload would buy
// nothing but indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ToWorker {
    /// Run one shard of one benchmark and reply with `Result` or `Error`.
    Run {
        /// Supervisor-chosen task id, echoed back in replies.
        task: u64,
        /// Benchmark display name (registry spelling).
        bench: String,
        /// The shard to explore.
        shard: ShardSpec,
        /// Semantic exploration config (the worker supplies its own
        /// `workers`/resume channels).
        config: Config,
        /// Ordering sites to weaken one step before checking
        /// (Figure 8-style fault injection; empty = default orderings).
        weaken: Vec<usize>,
    },
    /// Drain and exit cleanly.
    Exit,
}

/// Worker → supervisor.
#[derive(Debug)]
pub enum FromWorker {
    /// First message after startup.
    Hello {
        /// The worker's OS pid (diagnostics only).
        pid: u32,
    },
    /// Lease keep-alive while a task is running.
    Heartbeat {
        /// The running task's id.
        task: u64,
    },
    /// A task finished; its complete statistics.
    Result {
        /// The finished task's id.
        task: u64,
        /// Exploration statistics for exactly this shard.
        stats: Stats,
    },
    /// A task failed inside the worker (unknown benchmark, check panic).
    Error {
        /// The failed task's id.
        task: u64,
        /// Human-readable cause.
        message: String,
    },
}

impl ToWorker {
    /// Encode to a single JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ToWorker::Run {
                task,
                bench,
                shard,
                config,
                weaken,
            } => Json::obj(vec![
                ("msg", Json::str("run")),
                ("task", Json::num(*task)),
                ("bench", Json::str(bench.clone())),
                ("shard", shard_to_json(shard)),
                ("config", config_to_json(config)),
                (
                    "weaken",
                    Json::Arr(weaken.iter().map(|&s| Json::num(s as u64)).collect()),
                ),
            ]),
            ToWorker::Exit => Json::obj(vec![("msg", Json::str("exit"))]),
        }
        .encode()
    }

    /// Decode one line.
    pub fn decode(line: &str) -> Result<ToWorker, String> {
        let v = Json::parse(line)?;
        match v.get("msg").and_then(Json::as_str) {
            Some("run") => Ok(ToWorker::Run {
                task: v
                    .get("task")
                    .and_then(Json::as_u64)
                    .ok_or("run missing task")?,
                bench: v
                    .get("bench")
                    .and_then(Json::as_str)
                    .ok_or("run missing bench")?
                    .to_string(),
                shard: shard_from_json(v.get("shard").ok_or("run missing shard")?)?,
                config: config_from_json(v.get("config").ok_or("run missing config")?)?,
                weaken: v
                    .get("weaken")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|s| s.as_usize().ok_or("non-integer weaken entry"))
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            Some("exit") => Ok(ToWorker::Exit),
            other => Err(format!("unknown supervisor message {other:?}")),
        }
    }
}

impl FromWorker {
    /// Encode to a single JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            FromWorker::Hello { pid } => {
                Json::obj(vec![("msg", Json::str("hello")), ("pid", Json::num(*pid))])
            }
            FromWorker::Heartbeat { task } => Json::obj(vec![
                ("msg", Json::str("heartbeat")),
                ("task", Json::num(*task)),
            ]),
            FromWorker::Result { task, stats } => Json::obj(vec![
                ("msg", Json::str("result")),
                ("task", Json::num(*task)),
                ("stats", stats_to_json(stats)),
            ]),
            FromWorker::Error { task, message } => Json::obj(vec![
                ("msg", Json::str("error")),
                ("task", Json::num(*task)),
                ("message", Json::str(message.clone())),
            ]),
        }
        .encode()
    }

    /// Decode one line.
    pub fn decode(line: &str) -> Result<FromWorker, String> {
        let v = Json::parse(line)?;
        match v.get("msg").and_then(Json::as_str) {
            Some("hello") => Ok(FromWorker::Hello {
                pid: v
                    .get("pid")
                    .and_then(Json::as_u64)
                    .and_then(|p| u32::try_from(p).ok())
                    .ok_or("hello missing pid")?,
            }),
            Some("heartbeat") => Ok(FromWorker::Heartbeat {
                task: v
                    .get("task")
                    .and_then(Json::as_u64)
                    .ok_or("heartbeat missing task")?,
            }),
            Some("result") => Ok(FromWorker::Result {
                task: v
                    .get("task")
                    .and_then(Json::as_u64)
                    .ok_or("result missing task")?,
                stats: stats_from_json(v.get("stats").ok_or("result missing stats")?)?,
            }),
            Some("error") => Ok(FromWorker::Error {
                task: v
                    .get("task")
                    .and_then(Json::as_u64)
                    .ok_or("error missing task")?,
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("error missing message")?
                    .to_string(),
            }),
            other => Err(format!("unknown worker message {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_round_trips() {
        let config = Config {
            max_executions: 77,
            ..Config::default()
        };
        let msg = ToWorker::Run {
            task: 3,
            bench: "SPSC Queue".into(),
            shard: ShardSpec {
                floor: 1,
                script: vec![0, 2],
            },
            config,
            weaken: vec![4, 1],
        };
        let line = msg.encode();
        assert!(!line.contains('\n'));
        match ToWorker::decode(&line).unwrap() {
            ToWorker::Run {
                task,
                bench,
                shard,
                config,
                weaken,
            } => {
                assert_eq!(task, 3);
                assert_eq!(bench, "SPSC Queue");
                assert_eq!(shard.floor, 1);
                assert_eq!(shard.script, vec![0, 2]);
                assert_eq!(config.max_executions, 77);
                assert_eq!(weaken, vec![4, 1]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        assert!(matches!(
            ToWorker::decode(&ToWorker::Exit.encode()).unwrap(),
            ToWorker::Exit
        ));
    }

    #[test]
    fn worker_messages_round_trip() {
        for msg in [
            FromWorker::Hello { pid: 42 },
            FromWorker::Heartbeat { task: 9 },
            FromWorker::Result {
                task: 1,
                stats: Stats {
                    executions: 6,
                    ..Stats::default()
                },
            },
            FromWorker::Error {
                task: 2,
                message: "unknown benchmark \"Nope\"".into(),
            },
        ] {
            let line = msg.encode();
            assert!(!line.contains('\n'), "{line}");
            let back = FromWorker::decode(&line).unwrap();
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
    }

    #[test]
    fn garbage_lines_are_errors_not_panics() {
        assert!(FromWorker::decode("").is_err());
        assert!(FromWorker::decode("{}").is_err());
        assert!(FromWorker::decode("{\"msg\":\"nope\"}").is_err());
        assert!(ToWorker::decode("run it").is_err());
    }
}
