//! The worker-mode loop: what `cdsspec-campaign --worker-mode` runs.
//!
//! A worker is a thin, *stateless* shell around the in-process explorer:
//! read one `run` line, execute that shard through the benchmark
//! registry's ordinary `check` entry point, write one `result` line,
//! repeat. All state lives in the supervisor; a worker can be SIGKILLed
//! at any instant and the campaign loses nothing but the in-flight
//! shard's CPU time.
//!
//! A background thread heartbeats the currently-running task id so the
//! supervisor keeps extending the lease of a long exploration. Output is
//! serialized under one mutex — heartbeats can never split a result line.

use crate::proto::{FromWorker, ToWorker};
use cdsspec_mc::{Config, ShardSpec};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Worker-mode settings (decoded from `--worker-mode` flags).
#[derive(Clone, Debug)]
pub struct WorkerOpts {
    /// Heartbeat interval.
    pub heartbeat: Duration,
    /// Explorer threads for each task.
    pub worker_threads: usize,
    /// Fault injection: `abort()` on receiving this benchmark (simulates
    /// a shard that reliably crashes its worker).
    pub poison: Option<String>,
}

/// Sentinel meaning "no task running" in the heartbeat cell.
pub(crate) const IDLE: u64 = u64::MAX;

/// Execute one `Run` dispatch end to end: poison check, registry
/// lookup, ordering weakening, exploration, panic containment. Returns
/// exactly one reply (`Result` or `Error`). `current` is the heartbeat
/// cell, set to `task` for the duration of the check so the heartbeat
/// thread keeps the supervisor's lease alive. Shared by the stdio
/// worker loop and the TCP attach worker — the transports differ, the
/// task semantics must not.
pub(crate) fn execute_run(
    task: u64,
    bench: String,
    shard: ShardSpec,
    mut config: Config,
    weaken: Vec<usize>,
    opts: &WorkerOpts,
    current: &AtomicU64,
) -> FromWorker {
    if opts.poison.as_deref() == Some(bench.as_str()) {
        // Fault injection: die exactly the way a native crash
        // would — no unwinding, no reply, just SIGABRT.
        std::process::abort();
    }
    let all = cdsspec_structures::registry::benchmarks();
    let Some(b) = all.iter().find(|b| b.name == bench) else {
        return FromWorker::Error {
            task,
            message: format!("unknown benchmark {bench:?}"),
        };
    };
    config.workers = opts.worker_threads.max(1);
    config.resume_script = None;
    config.resume_shards = Some(vec![shard]);
    let mut ords = b.default_ords();
    if let Some(&s) = weaken.iter().find(|&&s| s >= ords.len()) {
        return FromWorker::Error {
            task,
            message: format!(
                "weaken site {s} out of range for {bench:?} ({} sites)",
                ords.len()
            ),
        };
    }
    for &s in &weaken {
        ords.weaken(s);
    }
    current.store(task, Ordering::Relaxed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (b.check)(config, ords)));
    current.store(IDLE, Ordering::Relaxed);
    match result {
        Ok(stats) => FromWorker::Result { task, stats },
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "check panicked".into());
            FromWorker::Error {
                task,
                message: format!("check panicked: {message}"),
            }
        }
    }
}

fn send(lock: &Mutex<()>, msg: &FromWorker) {
    let _guard = lock.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{}", msg.encode());
    let _ = out.flush();
}

/// Run the worker loop until `exit` or stdin EOF. Returns the process
/// exit code.
pub fn worker_main(opts: WorkerOpts) -> i32 {
    let out_lock = Arc::new(Mutex::new(()));
    send(
        &out_lock,
        &FromWorker::Hello {
            pid: std::process::id(),
        },
    );

    let current = Arc::new(AtomicU64::new(IDLE));
    {
        let current = Arc::clone(&current);
        let out_lock = Arc::clone(&out_lock);
        let interval = opts.heartbeat;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let task = current.load(Ordering::Relaxed);
            if task != IDLE {
                send(&out_lock, &FromWorker::Heartbeat { task });
            }
        });
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match ToWorker::decode(&line) {
            Ok(ToWorker::Run {
                task,
                bench,
                shard,
                config,
                weaken,
            }) => {
                let reply = execute_run(task, bench, shard, config, weaken, &opts, &current);
                send(&out_lock, &reply);
            }
            Ok(ToWorker::Exit) => return 0,
            Err(e) => {
                eprintln!("cdsspec-campaign worker: bad supervisor message: {e}");
                return 1;
            }
        }
    }
    0
}
