//! Campaign orchestration: per-benchmark probe → split → supervised (or
//! in-process) shard execution → deterministic merge → journal → cache.
//!
//! ## Determinism
//!
//! Every code path that produces a benchmark's row goes through the same
//! task decomposition and the same fold:
//!
//! 1. A **probe** task explores the root shard under the split cap (or
//!    the full cap when splitting is off).
//! 2. If the probe hit the split cap, its leftover frontier shards become
//!    one task each, run to completion in any order, on any worker, with
//!    any number of crash/retry cycles in between.
//! 3. The merge folds task results **in task order** — never completion
//!    order — so the merged row is a pure function of the per-task
//!    results, which are themselves deterministic (the PR 2 partition
//!    invariant). Worker deaths only ever discard *partial* output and
//!    rerun whole shards, so a chaos-ridden campaign renders the exact
//!    bytes an undisturbed one does (`--stable` masks wall-clock, the
//!    one nondeterministic column).
//!
//! The same argument makes the journal and cache sound: both store
//! completed per-bench merges keyed by content, and replaying or
//! cache-hitting a row reproduces the live rendering byte-for-byte.

use crate::cache::{CacheKey, ResultCache};
use crate::journal::Journal;
use crate::json::Json;
use crate::lease::{Outcome, TaskSpec, TaskTable};
use crate::supervisor::{SlotStats, Supervisor, SupervisorOpts, SupervisorStats, Transport};
use crate::wire::{config_hash, spec_hash, stats_from_json, stats_to_json, task_key};
use crate::{EXIT_BUG, EXIT_CLEAN, EXIT_RESUMABLE};
use cdsspec_mc::{Config, ShardSpec, Stats, StopReason};
use cdsspec_structures::registry::{benchmarks, Benchmark};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Everything a campaign run needs (the CLI builds one of these).
#[derive(Clone, Debug)]
pub struct CampaignOpts {
    /// Benchmarks to run (registry display names); `None` = all.
    pub bench_filter: Option<Vec<String>>,
    /// Probe execution cap; a probe that hits it fans its leftover
    /// frontier out as one task per shard. `0` = no splitting (one task
    /// per benchmark).
    pub split: u64,
    /// Execution cap per (non-probe) task.
    pub max_executions: u64,
    /// Mask wall-clock in all output (byte-identity across runs).
    pub stable: bool,
    /// Run tasks in this process instead of worker subprocesses (the
    /// fault-free baseline chaos runs are diffed against).
    pub in_process: bool,
    /// Explorer threads per task.
    pub worker_threads: usize,
    /// Journal path (`None` = no journal).
    pub journal: Option<PathBuf>,
    /// Result-cache directory (`None` = no cache).
    pub cache_dir: Option<PathBuf>,
    /// Stop (exit code 3, journal intact) after this many live-computed
    /// benchmarks — simulates a supervisor crash for resume testing.
    pub halt_after: Option<usize>,
    /// Ordering sites to weaken one step before checking each benchmark
    /// (Figure 8-style fault injection; empty = default orderings).
    /// Part of the campaign identity: it changes results, so it is folded
    /// into the config hash the journal header and cache key use.
    pub weaken: Vec<usize>,
    /// Subprocess pool settings (ignored with `in_process`).
    pub sup: SupervisorOpts,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        CampaignOpts {
            bench_filter: None,
            split: 0,
            max_executions: 1_000_000,
            stable: false,
            in_process: false,
            worker_threads: 1,
            journal: None,
            cache_dir: None,
            halt_after: None,
            weaken: Vec::new(),
            sup: SupervisorOpts::default(),
        }
    }
}

impl CampaignOpts {
    /// The semantic exploration config this campaign hashes and ships to
    /// workers.
    pub fn base_config(&self) -> Config {
        Config {
            max_executions: self.max_executions,
            ..Config::default()
        }
    }
}

/// Where a row's numbers came from (reported on stderr only — stdout is
/// identical either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Source {
    Live,
    Cache,
    JournalReplay,
}

struct Row {
    name: String,
    stats: Stats,
    suspects: usize,
    abandoned: usize,
    source: Source,
}

#[derive(Default)]
struct JournalState {
    tasks: HashMap<String, Stats>,
    benches: HashMap<String, (Stats, usize, usize)>,
}

/// Campaign counters, rendered as the `campaign-summary:` stderr block.
/// Returned structured (not just printed) so the daemon can aggregate
/// across served campaigns and ship the text to the remote client.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    /// Rows in the report.
    pub benches: usize,
    /// Rows computed live this run.
    pub live: usize,
    /// Rows answered from the result cache.
    pub cache_hits: usize,
    /// Rows answered from journal replay.
    pub journal_hits: usize,
    /// Worker-pool counters (zeroed for in-process runs).
    pub sup: SupervisorStats,
    /// Per-slot counters, in slot order (empty for in-process runs).
    pub slots: Vec<SlotStats>,
    /// Shards abandoned because the pool died.
    pub abandoned: usize,
    /// Shards quarantined as suspect.
    pub suspects: usize,
    /// Did `--halt-after` stop the run early?
    pub halted: bool,
    /// Live benchmarks completed before a halt.
    pub live_done: usize,
}

impl CampaignSummary {
    /// The stderr block local runs print and remote runs ship to the
    /// client: the `campaign-summary:` counters line, one
    /// `worker-report:` line per pool slot (requeue/reconnect churn is
    /// reported, never silently absorbed), and the halt notice.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "campaign-summary: benches={} live={} cache_hits={} journal_hits={} \
             worker_deaths={} chaos_kills={} quarantined={} abandoned={} suspects={} halted={} \
             dispatches={} requeues={}",
            self.benches,
            self.live,
            self.cache_hits,
            self.journal_hits,
            self.sup.worker_deaths,
            self.sup.chaos_kills,
            self.sup.quarantined,
            self.abandoned,
            self.suspects,
            self.halted,
            self.sup.dispatches,
            self.sup.requeues,
        );
        for (i, slot) in self.slots.iter().enumerate() {
            let _ = writeln!(
                s,
                "worker-report: slot={i} spawns={} deaths={} requeues={} completed={}",
                slot.spawns, slot.deaths, slot.requeues, slot.completed
            );
        }
        if self.halted {
            let _ = writeln!(
                s,
                "cdsspec-campaign: halted after {} benchmark(s); \
                 resume with the same --journal to continue",
                self.live_done
            );
        }
        s
    }
}

/// A finished campaign: the exit code plus its summary counters.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Process-style exit code ([`crate::EXIT_CLEAN`] etc.).
    pub code: i32,
    /// The counters behind the `campaign-summary:` block.
    pub summary: CampaignSummary,
}

/// Run a campaign; returns the process exit code. Prints the summary
/// block to stderr (the structured variant is [`run_campaign_with`]).
pub fn run_campaign(opts: &CampaignOpts, out: &mut dyn Write) -> Result<i32, String> {
    let outcome = run_campaign_with(opts, out, None)?;
    eprint!("{}", outcome.summary.render());
    Ok(outcome.code)
}

/// Run a campaign over an explicit worker transport (`None` = the
/// default: in-process when `opts.in_process`, else local
/// subprocesses). The report is written to `out`; the summary is
/// *returned*, not printed — callers decide where it goes (the CLI
/// prints it to stderr, the daemon ships it to the remote client).
pub fn run_campaign_with(
    opts: &CampaignOpts,
    out: &mut dyn Write,
    transport: Option<Box<dyn Transport>>,
) -> Result<CampaignOutcome, String> {
    let base_config = opts.base_config();
    let cfg_hash = {
        // Weakened orderings change every result, so they are part of the
        // campaign identity exactly like the semantic config.
        let mut h = crate::hash::Fnv1a::new();
        h.update_u64(config_hash(&base_config));
        for &s in &opts.weaken {
            h.update_u64(s as u64);
        }
        h.finish()
    };
    let benches = select_benches(opts)?;

    let mut journal = None;
    let mut replay = JournalState::default();
    if let Some(path) = &opts.journal {
        let (j, recovered) = open_journal(path, opts, cfg_hash, &mut replay)?;
        if recovered > 0 {
            eprintln!(
                "cdsspec-campaign: journal {}: dropped {recovered} byte(s) of corrupt tail, \
                 resuming from the last valid record",
                path.display()
            );
        }
        journal = Some(j);
    }
    let cache = match &opts.cache_dir {
        Some(dir) => Some(ResultCache::open(dir).map_err(|e| e.to_string())?),
        None => None,
    };
    let mut sup = if opts.in_process && transport.is_none() {
        None
    } else {
        let mut sup_opts = opts.sup.clone();
        sup_opts.weaken = opts.weaken.clone();
        Some(match transport {
            Some(t) => Supervisor::with_transport(sup_opts, t),
            None => Supervisor::new(sup_opts),
        })
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut live_done = 0usize;
    let mut halted = false;
    for bench in &benches {
        // Journal replay: this bench already completed in a prior run of
        // the same campaign.
        if let Some((stats, suspects, abandoned)) = replay.benches.get(bench.name) {
            rows.push(Row {
                name: bench.name.to_string(),
                stats: stats.clone(),
                suspects: *suspects,
                abandoned: *abandoned,
                source: Source::JournalReplay,
            });
            continue;
        }
        let key = CacheKey {
            structure: bench.name.to_string(),
            spec_hash: spec_hash(bench),
            config_hash: cfg_hash,
        };
        if let Some(stats) = cache.as_ref().and_then(|c| c.lookup(&key)) {
            journal_bench(&mut journal, bench.name, &stats, 0, 0);
            rows.push(Row {
                name: bench.name.to_string(),
                stats,
                suspects: 0,
                abandoned: 0,
                source: Source::Cache,
            });
            continue;
        }
        if opts.halt_after.is_some_and(|n| live_done >= n) {
            halted = true;
            break;
        }
        let (stats, suspects, abandoned) = run_bench(
            bench,
            opts,
            &base_config,
            sup.as_mut(),
            &mut journal,
            &replay,
        )?;
        journal_bench(&mut journal, bench.name, &stats, suspects, abandoned);
        if suspects == 0
            && abandoned == 0
            && matches!(stats.stop, StopReason::Exhausted | StopReason::FirstBug)
        {
            if let Some(cache) = &cache {
                if let Err(e) = cache.store(&key, &stats) {
                    eprintln!("cdsspec-campaign: cache store failed: {e}");
                }
            }
        }
        live_done += 1;
        rows.push(Row {
            name: bench.name.to_string(),
            stats,
            suspects,
            abandoned,
            source: Source::Live,
        });
    }
    if let Some(sup) = &mut sup {
        sup.shutdown();
    }

    render(&rows, opts.stable, out).map_err(|e| format!("write failed: {e}"))?;

    let suspects: usize = rows.iter().map(|r| r.suspects).sum();
    let abandoned: usize = rows.iter().map(|r| r.abandoned).sum();
    let bugs: usize = rows.iter().map(|r| r.stats.bugs.len()).sum();
    let count = |s: Source| rows.iter().filter(|r| r.source == s).count();
    let summary = CampaignSummary {
        benches: rows.len(),
        live: count(Source::Live),
        cache_hits: count(Source::Cache),
        journal_hits: count(Source::JournalReplay),
        sup: sup.as_ref().map(|s| s.stats).unwrap_or_default(),
        slots: sup.as_ref().map(|s| s.slot_stats()).unwrap_or_default(),
        abandoned,
        suspects,
        halted,
        live_done,
    };

    let code = if halted || suspects + abandoned > 0 {
        EXIT_RESUMABLE
    } else if bugs > 0 {
        EXIT_BUG
    } else {
        EXIT_CLEAN
    };
    Ok(CampaignOutcome { code, summary })
}

fn select_benches(opts: &CampaignOpts) -> Result<Vec<Benchmark>, String> {
    let mut all = benchmarks();
    if let Some(names) = &opts.bench_filter {
        for name in names {
            if !all.iter().any(|b| b.name == *name) {
                let known: Vec<&str> = all.iter().map(|b| b.name).collect();
                return Err(format!(
                    "unknown benchmark {name:?}; known: {}",
                    known.join(", ")
                ));
            }
        }
        // Registry order, not filter order: output must not depend on how
        // the user spelled the filter.
        all.retain(|b| names.iter().any(|n| n == b.name));
    }
    for bench in &all {
        if let Some(&s) = opts.weaken.iter().find(|&&s| s >= bench.sites.len()) {
            return Err(format!(
                "--weaken {s} is out of range for {:?} ({} sites)",
                bench.name,
                bench.sites.len()
            ));
        }
    }
    Ok(all)
}

/// Campaign-identity fields stored in the journal header record. A resume
/// with different parameters would silently compute different rows, so it
/// is rejected instead.
fn campaign_record(opts: &CampaignOpts, cfg_hash: u64) -> Json {
    let filter = match &opts.bench_filter {
        None => "*".to_string(),
        Some(names) => names.join(","),
    };
    Json::obj(vec![
        ("rec", Json::str("campaign")),
        ("config_hash", Json::Num(cfg_hash as i128)),
        ("split", Json::num(opts.split)),
        ("filter", Json::str(filter)),
    ])
}

fn open_journal(
    path: &std::path::Path,
    opts: &CampaignOpts,
    cfg_hash: u64,
    replay: &mut JournalState,
) -> Result<(Journal, u64), String> {
    let (mut journal, recovery) = Journal::open(path).map_err(|e| e.to_string())?;
    let expected = campaign_record(opts, cfg_hash);
    if recovery.records.is_empty() {
        journal.append(&expected).map_err(|e| e.to_string())?;
        return Ok((journal, 0));
    }
    if recovery.records[0] != expected {
        return Err(crate::error::ParseError::WrongCampaign {
            path: path.to_path_buf(),
            detail: format!(
                "journal header {} vs current campaign {}",
                recovery.records[0].encode(),
                expected.encode()
            ),
        }
        .to_string());
    }
    for record in &recovery.records[1..] {
        match record.get("rec").and_then(Json::as_str) {
            Some("task") => {
                let (Some(key), Some(stats)) = (
                    record.get("key").and_then(Json::as_str),
                    record.get("stats").and_then(|s| stats_from_json(s).ok()),
                ) else {
                    continue; // CRC-valid but semantically off: recompute
                };
                replay.tasks.insert(key.to_string(), stats);
            }
            Some("bench") => {
                let (Some(name), Some(stats)) = (
                    record.get("name").and_then(Json::as_str),
                    record.get("stats").and_then(|s| stats_from_json(s).ok()),
                ) else {
                    continue;
                };
                let suspects = record.get("suspects").and_then(Json::as_usize).unwrap_or(0);
                let abandoned = record
                    .get("abandoned")
                    .and_then(Json::as_usize)
                    .unwrap_or(0);
                replay
                    .benches
                    .insert(name.to_string(), (stats, suspects, abandoned));
            }
            _ => {}
        }
    }
    Ok((journal, recovery.dropped_bytes))
}

fn journal_task(journal: &mut Option<Journal>, key: &str, stats: &Stats) {
    if let Some(journal) = journal {
        let record = Json::obj(vec![
            ("rec", Json::str("task")),
            ("key", Json::str(key)),
            ("stats", stats_to_json(stats)),
        ]);
        if let Err(e) = journal.append(&record) {
            eprintln!("cdsspec-campaign: journal append failed: {e}");
        }
    }
}

fn journal_bench(
    journal: &mut Option<Journal>,
    name: &str,
    stats: &Stats,
    suspects: usize,
    abandoned: usize,
) {
    if let Some(journal) = journal {
        let record = Json::obj(vec![
            ("rec", Json::str("bench")),
            ("name", Json::str(name)),
            ("stats", stats_to_json(stats)),
            ("suspects", Json::num(suspects as u64)),
            ("abandoned", Json::num(abandoned as u64)),
        ]);
        if let Err(e) = journal.append(&record) {
            eprintln!("cdsspec-campaign: journal append failed: {e}");
        }
    }
}

/// Probe, optionally split, execute, merge: one benchmark's row.
fn run_bench(
    bench: &Benchmark,
    opts: &CampaignOpts,
    base_config: &Config,
    mut sup: Option<&mut Supervisor>,
    journal: &mut Option<Journal>,
    replay: &JournalState,
) -> Result<(Stats, usize, usize), String> {
    let probe_cap = if opts.split > 0 {
        opts.split.min(opts.max_executions)
    } else {
        opts.max_executions
    };
    let probe_spec = TaskSpec {
        bench: bench.name.to_string(),
        shard: ShardSpec::root(),
        max_executions: probe_cap,
    };
    let probe = run_tasks(
        vec![probe_spec.clone()],
        opts,
        base_config,
        sup.as_deref_mut(),
        journal,
        replay,
    )
    .pop()
    .expect("one probe outcome");

    let probe_stats = match probe {
        Outcome::Done(stats) => stats,
        Outcome::Quarantined { .. } => {
            // The whole benchmark crashes its workers: report it suspect
            // with an errored, resumable row (its shard is the root).
            return Ok((errored_root_stats(), 1, 0));
        }
        Outcome::Abandoned => {
            return Ok((errored_root_stats(), 0, 1));
        }
    };

    // Fan out only when the probe was cut by its cap and left work.
    let leftover = probe_stats.frontier_shards();
    if opts.split == 0 || probe_stats.stop != StopReason::ExecutionCap || leftover.is_empty() {
        return Ok((probe_stats, 0, 0));
    }
    let shard_specs: Vec<TaskSpec> = leftover
        .into_iter()
        .map(|shard| TaskSpec {
            bench: bench.name.to_string(),
            shard,
            max_executions: opts.max_executions,
        })
        .collect();
    let outcomes = run_tasks(shard_specs.clone(), opts, base_config, sup, journal, replay);
    Ok(merge(probe_stats, &shard_specs, outcomes))
}

/// The row for a benchmark whose probe never completed: zero counters,
/// errored, with the whole (root) shard left on the resumable frontier.
fn errored_root_stats() -> Stats {
    let mut stats = Stats {
        stop: StopReason::Errored,
        ..Stats::default()
    };
    stats.set_frontier_shards(vec![ShardSpec::root()]);
    stats
}

/// Execute a batch of tasks, answering journaled tasks without running
/// them and journaling fresh completions.
fn run_tasks(
    specs: Vec<TaskSpec>,
    opts: &CampaignOpts,
    base_config: &Config,
    sup: Option<&mut Supervisor>,
    journal: &mut Option<Journal>,
    replay: &JournalState,
) -> Vec<Outcome> {
    let keys: Vec<String> = specs
        .iter()
        .map(|s| task_key(&s.bench, &s.shard, s.max_executions))
        .collect();
    match sup {
        Some(sup) => {
            let mut table = TaskTable::new(
                specs,
                opts.sup.lease,
                Duration::from_millis(50),
                opts.sup.max_attempts,
            );
            for (id, key) in keys.iter().enumerate() {
                if let Some(stats) = replay.tasks.get(key) {
                    table.preload_done(id, stats.clone());
                }
            }
            sup.run_batch(base_config, &mut table, |id, stats| {
                journal_task(journal, &keys[id], stats);
            });
            table.outcomes()
        }
        None => specs
            .into_iter()
            .zip(keys)
            .map(|(spec, key)| {
                if let Some(stats) = replay.tasks.get(&key) {
                    return Outcome::Done(stats.clone());
                }
                let all = benchmarks();
                let bench = all
                    .iter()
                    .find(|b| b.name == spec.bench)
                    .expect("benchmark validated earlier");
                let mut config = base_config.clone();
                config.max_executions = spec.max_executions;
                config.workers = opts.worker_threads.max(1);
                config.resume_script = None;
                config.resume_shards = Some(vec![spec.shard]);
                let mut ords = bench.default_ords();
                for &s in &opts.weaken {
                    ords.weaken(s);
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    (bench.check)(config, ords)
                }));
                match result {
                    Ok(stats) => {
                        journal_task(journal, &key, &stats);
                        Outcome::Done(stats)
                    }
                    Err(_) => Outcome::Quarantined { attempts: 1 },
                }
            })
            .collect(),
    }
}

/// Fold task outcomes (in task order) into the probe's stats. Quarantined
/// and abandoned shards stay on the frontier — the row is resumable — and
/// force `StopReason::Errored`.
fn merge(probe: Stats, specs: &[TaskSpec], outcomes: Vec<Outcome>) -> (Stats, usize, usize) {
    let mut merged = probe;
    let mut stop = StopReason::Exhausted;
    let mut leftover: Vec<ShardSpec> = Vec::new();
    let mut suspects = 0;
    let mut abandoned = 0;
    for (spec, outcome) in specs.iter().zip(outcomes) {
        match outcome {
            Outcome::Done(s) => {
                stop = stop.worst(s.stop);
                leftover.extend(s.frontier_shards());
                merged.executions += s.executions;
                merged.feasible += s.feasible;
                merged.diverged += s.diverged;
                merged.sleep_pruned += s.sleep_pruned;
                merged.sampled += s.sampled;
                merged.peak_depth = merged.peak_depth.max(s.peak_depth);
                merged.elapsed += s.elapsed;
                merged.bugs.extend(s.bugs);
            }
            Outcome::Quarantined { .. } => {
                suspects += 1;
                stop = stop.worst(StopReason::Errored);
                leftover.push(spec.shard.clone());
            }
            Outcome::Abandoned => {
                abandoned += 1;
                stop = stop.worst(StopReason::Errored);
                leftover.push(spec.shard.clone());
            }
        }
    }
    // Dedup bugs by (category, rendered message), keeping the first
    // occurrence in task order — same policy as the in-process merge.
    let mut seen = HashSet::new();
    merged
        .bugs
        .retain(|b| seen.insert((b.bug.category(), b.bug.to_string())));
    merged.stop = stop;
    merged.set_frontier_shards(leftover);
    (merged, suspects, abandoned)
}

fn render(rows: &[Row], stable: bool, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "{:<22} {:>12} {:>12} {:>6} {:>5}  {:<13} {:>10}",
        "Structure", "#Execs", "#Feasible", "Peak", "Bugs", "Stop", "Time"
    )?;
    writeln!(out, "{}", "-".repeat(88))?;
    for row in rows {
        let time = if stable {
            "-".to_string()
        } else {
            format!("{:.2?}", row.stats.elapsed)
        };
        let suspect = if row.suspects + row.abandoned > 0 {
            format!("  SUSPECT({})", row.suspects + row.abandoned)
        } else {
            String::new()
        };
        writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>6} {:>5}  {:<13} {:>10}{}",
            row.name,
            row.stats.executions,
            row.stats.feasible,
            row.stats.peak_depth,
            row.stats.bugs.len(),
            row.stats.stop.to_string(),
            time,
            suspect
        )?;
        for bug in &row.stats.bugs {
            writeln!(out, "    bug: {}", bug.bug)?;
        }
    }
    writeln!(out, "{}", "-".repeat(88))?;
    let execs: u64 = rows.iter().map(|r| r.stats.executions).sum();
    let bugs: usize = rows.iter().map(|r| r.stats.bugs.len()).sum();
    let suspects: usize = rows.iter().map(|r| r.suspects + r.abandoned).sum();
    writeln!(
        out,
        "Total: {} benchmark(s), {execs} executions, {bugs} bug(s), {suspects} suspect shard(s)",
        rows.len()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bench: &str) -> TaskSpec {
        TaskSpec {
            bench: bench.into(),
            shard: ShardSpec {
                floor: 1,
                script: vec![7],
            },
            max_executions: 10,
        }
    }

    #[test]
    fn merge_is_order_of_tasks_not_completion() {
        let probe = Stats {
            executions: 5,
            feasible: 3,
            stop: StopReason::ExecutionCap,
            ..Stats::default()
        };
        let a = Stats {
            executions: 10,
            feasible: 6,
            peak_depth: 4,
            stop: StopReason::Exhausted,
            ..Stats::default()
        };
        let b = Stats {
            executions: 20,
            feasible: 12,
            peak_depth: 9,
            stop: StopReason::Exhausted,
            ..Stats::default()
        };
        let specs = [spec("X"), spec("X")];
        let (m1, s1, a1) = merge(
            probe.clone(),
            &specs,
            vec![Outcome::Done(a.clone()), Outcome::Done(b.clone())],
        );
        assert_eq!((s1, a1), (0, 0));
        assert_eq!(m1.executions, 35);
        assert_eq!(m1.feasible, 21);
        assert_eq!(m1.peak_depth, 9);
        assert_eq!(
            m1.stop,
            StopReason::Exhausted,
            "probe's cap is not inherited"
        );
        assert!(m1.frontier.is_none());
    }

    #[test]
    fn quarantined_shards_stay_on_frontier_and_error_the_row() {
        let probe = Stats {
            executions: 5,
            stop: StopReason::ExecutionCap,
            ..Stats::default()
        };
        let done = Stats {
            executions: 10,
            stop: StopReason::Exhausted,
            ..Stats::default()
        };
        let specs = [spec("X"), spec("X")];
        let (m, suspects, abandoned) = merge(
            probe,
            &specs,
            vec![Outcome::Done(done), Outcome::Quarantined { attempts: 3 }],
        );
        assert_eq!(suspects, 1);
        assert_eq!(abandoned, 0);
        assert_eq!(m.stop, StopReason::Errored);
        assert_eq!(
            m.frontier_shards(),
            vec![specs[1].shard.clone()],
            "the unexplored quarantined shard is resumable"
        );
    }

    #[test]
    fn merged_bugs_dedup_by_category_and_message() {
        use cdsspec_mc::{Bug, BugCategory, FoundBug};
        let mk = |msg: &str, execution| FoundBug {
            bug: Bug::Restored {
                category: BugCategory::Assertion,
                message: msg.into(),
            },
            execution,
            trace: String::new(),
            worker: 0,
            shard: vec![],
        };
        let probe = Stats {
            bugs: vec![mk("dup", 1)],
            stop: StopReason::ExecutionCap,
            ..Stats::default()
        };
        let task = Stats {
            bugs: vec![mk("dup", 9), mk("other", 2)],
            stop: StopReason::Exhausted,
            ..Stats::default()
        };
        let specs = [spec("X")];
        let (m, _, _) = merge(probe, &specs, vec![Outcome::Done(task)]);
        assert_eq!(m.bugs.len(), 2);
        assert_eq!(m.bugs[0].execution, 1, "first occurrence wins");
    }

    #[test]
    fn render_is_deterministic_and_masks_time_under_stable() {
        let rows = vec![Row {
            name: "SPSC Queue".into(),
            stats: Stats {
                executions: 18,
                feasible: 18,
                peak_depth: 6,
                elapsed: Duration::from_millis(3),
                ..Stats::default()
            },
            suspects: 0,
            abandoned: 0,
            source: Source::Live,
        }];
        let mut a = Vec::new();
        render(&rows, true, &mut a).unwrap();
        let mut b = Vec::new();
        render(&rows, true, &mut b).unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(!text.contains("3.00ms"), "{text}");
        assert!(text.contains("SPSC Queue"));
        assert!(text.contains("Total: 1 benchmark(s), 18 executions"));

        let mut c = Vec::new();
        render(&rows, false, &mut c).unwrap();
        assert!(String::from_utf8(c).unwrap().contains("ms"));
    }

    #[test]
    fn campaign_record_captures_identity() {
        let opts = CampaignOpts::default();
        let h = config_hash(&opts.base_config());
        let a = campaign_record(&opts, h);
        let mut other = opts.clone();
        other.split = 500;
        assert_ne!(campaign_record(&other, h), a, "split is identity");
        let mut filt = opts.clone();
        filt.bench_filter = Some(vec!["RCU".into()]);
        assert_ne!(campaign_record(&filt, h), a, "filter is identity");
        let mut cfg = opts.clone();
        cfg.max_executions += 1;
        assert_ne!(
            campaign_record(&cfg, config_hash(&cfg.base_config())),
            a,
            "config hash is identity"
        );
    }
}
