//! Shard leases: who owns which task, until when, and what happens when
//! an owner dies.
//!
//! The supervisor's scheduling state is this table. Each task (one shard
//! of one benchmark) moves through:
//!
//! ```text
//! Pending ──lease──▶ Leased ──result──▶ Done
//!    ▲                  │
//!    └──expiry/death────┤  (attempts < max: requeue with backoff)
//!                       └──────────────▶ Quarantined  (attempts == max)
//! ```
//!
//! A lease carries a deadline; [`TaskTable::expired`] surfaces leases
//! whose owner has stopped heartbeating so the supervisor can kill the
//! worker and requeue the shard. Requeues back off exponentially
//! (`backoff * 2^(attempt-1)`, hard-capped at [`MAX_REQUEUE_BACKOFF`])
//! so a shard that keeps crashing its worker cannot monopolize the pool
//! yet is never parked for minutes either, and after `max_attempts` failures
//! the shard is **quarantined**: reported as suspect instead of retried
//! forever.
//!
//! The table is deliberately pure bookkeeping — no processes, no clocks
//! of its own (every method takes `now`) — so lease policy is unit
//! testable without spawning anything.

use cdsspec_mc::{ShardSpec, Stats};
use std::time::{Duration, Instant};

/// Hard ceiling on the requeue backoff, regardless of base delay or
/// attempt count. Before this cap existed, the exponent clamp alone
/// still let `backoff * 2^10` reach minutes for campaign-scale base
/// delays, which silently stalled a shard far beyond any lease; now a
/// crashing shard is never parked longer than this between attempts.
pub const MAX_REQUEUE_BACKOFF: Duration = Duration::from_secs(2);

/// One unit of campaign work: a shard of one benchmark's choice tree.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Benchmark display name (registry spelling).
    pub bench: String,
    /// The frontier shard to explore.
    pub shard: ShardSpec,
    /// Execution cap for this task.
    pub max_executions: u64,
}

/// Terminal state of one task after the campaign ran it.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The task completed; its merged statistics.
    Done(Stats),
    /// The task crashed its worker `attempts` times and was quarantined.
    Quarantined {
        /// Dispatch attempts consumed before giving up.
        attempts: u32,
    },
    /// The pool died (every slot unusable) before the task could run.
    Abandoned,
}

/// What a worker-failure report did to the task it was leasing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailOutcome {
    /// The task went back to `Pending`, not dispatchable before the
    /// embedded delay elapses.
    Requeued {
        /// Backoff applied before the next attempt.
        delay: Duration,
        /// Attempts consumed so far.
        attempt: u32,
    },
    /// The task reached its attempt cap and is out of the rotation.
    Quarantined {
        /// Attempts consumed.
        attempts: u32,
    },
}

#[derive(Debug)]
enum State {
    Pending { not_before: Instant },
    Leased { slot: usize, deadline: Instant },
    Done(Stats),
    Quarantined,
}

struct Task {
    spec: TaskSpec,
    state: State,
    attempts: u32,
}

/// The supervisor's lease table over a fixed set of tasks.
pub struct TaskTable {
    tasks: Vec<Task>,
    lease: Duration,
    backoff: Duration,
    max_attempts: u32,
}

impl TaskTable {
    /// A table over `specs`, all immediately pending.
    ///
    /// `lease` is how long a worker may hold a task without a heartbeat
    /// extension; `backoff` the base requeue delay; `max_attempts` the
    /// dispatch budget before quarantine (≥ 1).
    pub fn new(
        specs: Vec<TaskSpec>,
        lease: Duration,
        backoff: Duration,
        max_attempts: u32,
    ) -> Self {
        let now = Instant::now();
        TaskTable {
            tasks: specs
                .into_iter()
                .map(|spec| Task {
                    spec,
                    state: State::Pending { not_before: now },
                    attempts: 0,
                })
                .collect(),
            lease,
            backoff,
            max_attempts: max_attempts.max(1),
        }
    }

    /// Number of tasks in the table.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The spec of task `id`.
    pub fn spec(&self, id: usize) -> &TaskSpec {
        &self.tasks[id].spec
    }

    /// Dispatch attempts consumed by task `id` so far.
    pub fn attempts(&self, id: usize) -> u32 {
        self.tasks[id].attempts
    }

    /// Lowest-id task that is pending and past its backoff delay.
    pub fn next_ready(&self, now: Instant) -> Option<usize> {
        self.tasks
            .iter()
            .position(|t| matches!(t.state, State::Pending { not_before } if not_before <= now))
    }

    /// Earliest instant at which some pending task becomes ready (to size
    /// the supervisor's wait when everything ready is already leased).
    pub fn next_wakeup(&self) -> Option<Instant> {
        self.tasks
            .iter()
            .filter_map(|t| match t.state {
                State::Pending { not_before } => Some(not_before),
                State::Leased { deadline, .. } => Some(deadline),
                _ => None,
            })
            .min()
    }

    /// Lease task `id` to worker slot `slot`, consuming one attempt. The
    /// lease expires at `now + lease` unless extended.
    pub fn lease(&mut self, id: usize, slot: usize, now: Instant) {
        let task = &mut self.tasks[id];
        debug_assert!(matches!(task.state, State::Pending { .. }));
        task.attempts += 1;
        task.state = State::Leased {
            slot,
            deadline: now + self.lease,
        };
    }

    /// Extend the lease held by `slot` (a heartbeat arrived). Returns the
    /// task id, or `None` if the slot holds no lease (e.g. a heartbeat
    /// raced a completed result).
    pub fn extend(&mut self, slot: usize, now: Instant) -> Option<usize> {
        let id = self.leased_by(slot)?;
        if let State::Leased { deadline, .. } = &mut self.tasks[id].state {
            *deadline = now + self.lease;
        }
        Some(id)
    }

    /// The task currently leased to `slot`, if any.
    pub fn leased_by(&self, slot: usize) -> Option<usize> {
        self.tasks
            .iter()
            .position(|t| matches!(t.state, State::Leased { slot: s, .. } if s == slot))
    }

    /// Record a completed result from `slot`. Returns the task id, or
    /// `None` if the slot held no lease (a stale result from a worker
    /// whose lease already expired — dropped, because its shard was
    /// requeued and will be recomputed; merging both copies would double
    /// count).
    pub fn complete(&mut self, slot: usize, stats: Stats) -> Option<usize> {
        let id = self.leased_by(slot)?;
        self.tasks[id].state = State::Done(stats);
        Some(id)
    }

    /// Record that the worker on `slot` failed (died, errored, or lost
    /// its lease). The leased task either requeues with exponential
    /// backoff or quarantines at the attempt cap.
    pub fn fail(&mut self, slot: usize, now: Instant) -> Option<(usize, FailOutcome)> {
        let id = self.leased_by(slot)?;
        let task = &mut self.tasks[id];
        if task.attempts >= self.max_attempts {
            task.state = State::Quarantined;
            Some((
                id,
                FailOutcome::Quarantined {
                    attempts: task.attempts,
                },
            ))
        } else {
            // attempts >= 1 here (lease consumed one), so the shift is
            // well-defined; cap the exponent to keep the arithmetic
            // sane and the delay itself at MAX_REQUEUE_BACKOFF.
            let exp = (task.attempts - 1).min(10);
            let delay = (self.backoff * 2u32.pow(exp)).min(MAX_REQUEUE_BACKOFF);
            task.state = State::Pending {
                not_before: now + delay,
            };
            Some((
                id,
                FailOutcome::Requeued {
                    delay,
                    attempt: task.attempts,
                },
            ))
        }
    }

    /// Leases whose deadline has passed: `(task id, slot)` pairs. The
    /// supervisor kills those workers and then reports them via
    /// [`TaskTable::fail`].
    pub fn expired(&self, now: Instant) -> Vec<(usize, usize)> {
        self.tasks
            .iter()
            .enumerate()
            .filter_map(|(id, t)| match t.state {
                State::Leased { slot, deadline } if deadline <= now => Some((id, slot)),
                _ => None,
            })
            .collect()
    }

    /// Mark task `id` as already done (journal replay on resume).
    pub fn preload_done(&mut self, id: usize, stats: Stats) {
        self.tasks[id].state = State::Done(stats);
    }

    /// Quarantine every task that is not yet terminal — the pool died and
    /// nothing else can run. Returns how many tasks were abandoned.
    pub fn abandon_unfinished(&mut self) -> usize {
        let mut n = 0;
        for task in &mut self.tasks {
            if matches!(task.state, State::Pending { .. } | State::Leased { .. }) {
                task.state = State::Quarantined;
                task.attempts = 0; // distinguishes Abandoned in outcomes()
                n += 1;
            }
        }
        n
    }

    /// Is any task still pending or leased?
    pub fn unfinished(&self) -> bool {
        self.tasks
            .iter()
            .any(|t| matches!(t.state, State::Pending { .. } | State::Leased { .. }))
    }

    /// Consume the table into per-task outcomes, in task order.
    pub fn outcomes(self) -> Vec<Outcome> {
        self.tasks
            .into_iter()
            .map(|t| match t.state {
                State::Done(stats) => Outcome::Done(stats),
                State::Quarantined if t.attempts == 0 => Outcome::Abandoned,
                State::Quarantined => Outcome::Quarantined {
                    attempts: t.attempts,
                },
                State::Pending { .. } | State::Leased { .. } => {
                    unreachable!("outcomes() called with unfinished tasks")
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize, max_attempts: u32) -> TaskTable {
        let specs = (0..n)
            .map(|i| TaskSpec {
                bench: format!("bench-{i}"),
                shard: ShardSpec::root(),
                max_executions: 100,
            })
            .collect();
        TaskTable::new(
            specs,
            Duration::from_millis(100),
            Duration::from_millis(10),
            max_attempts,
        )
    }

    #[test]
    fn happy_path_lease_and_complete() {
        let mut t = table(2, 3);
        let now = Instant::now();
        assert_eq!(t.next_ready(now), Some(0));
        t.lease(0, 7, now);
        assert_eq!(t.next_ready(now), Some(1), "leased task is not ready");
        assert_eq!(t.leased_by(7), Some(0));
        assert_eq!(t.complete(7, Stats::default()), Some(0));
        assert_eq!(t.leased_by(7), None);
        t.lease(1, 7, now);
        t.complete(7, Stats::default());
        assert!(!t.unfinished());
        let outcomes = t.outcomes();
        assert!(matches!(outcomes[0], Outcome::Done(_)));
        assert!(matches!(outcomes[1], Outcome::Done(_)));
    }

    #[test]
    fn failure_requeues_with_exponential_backoff_then_quarantines() {
        let mut t = table(1, 3);
        let now = Instant::now();

        t.lease(0, 0, now);
        let (id, out) = t.fail(0, now).unwrap();
        assert_eq!(id, 0);
        assert_eq!(
            out,
            FailOutcome::Requeued {
                delay: Duration::from_millis(10),
                attempt: 1
            }
        );
        assert_eq!(t.next_ready(now), None, "backoff delays the requeue");
        let later = now + Duration::from_millis(11);
        assert_eq!(t.next_ready(later), Some(0));

        t.lease(0, 1, later);
        let (_, out) = t.fail(1, later).unwrap();
        assert_eq!(
            out,
            FailOutcome::Requeued {
                delay: Duration::from_millis(20),
                attempt: 2
            },
            "backoff doubles"
        );

        let final_try = later + Duration::from_millis(21);
        t.lease(0, 2, final_try);
        let (_, out) = t.fail(2, final_try).unwrap();
        assert_eq!(out, FailOutcome::Quarantined { attempts: 3 });
        assert!(!t.unfinished());
        assert!(matches!(
            t.outcomes()[0],
            Outcome::Quarantined { attempts: 3 }
        ));
    }

    #[test]
    fn requeue_backoff_is_capped() {
        // A large base delay would exceed MAX_REQUEUE_BACKOFF by the
        // third attempt without the cap (500ms * 2^2 = 2s * 2^... );
        // assert every requeue delay respects the ceiling.
        let specs = vec![TaskSpec {
            bench: "b".into(),
            shard: ShardSpec::root(),
            max_executions: 1,
        }];
        let mut t = TaskTable::new(
            specs,
            Duration::from_millis(100),
            Duration::from_millis(1500),
            10,
        );
        let mut now = Instant::now();
        for attempt in 1..=5u32 {
            t.lease(0, 0, now);
            let (_, out) = t.fail(0, now).unwrap();
            match out {
                FailOutcome::Requeued { delay, attempt: a } => {
                    assert_eq!(a, attempt);
                    assert!(
                        delay <= MAX_REQUEUE_BACKOFF,
                        "attempt {attempt}: delay {delay:?} exceeds cap"
                    );
                    if attempt >= 2 {
                        assert_eq!(delay, MAX_REQUEUE_BACKOFF, "cap binds from attempt 2");
                    }
                    now += delay + Duration::from_millis(1);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn lease_expiry_and_heartbeat_extension() {
        let mut t = table(1, 3);
        let now = Instant::now();
        t.lease(0, 0, now);
        assert!(t.expired(now + Duration::from_millis(50)).is_empty());
        assert_eq!(
            t.expired(now + Duration::from_millis(101)),
            vec![(0, 0)],
            "lease expires without heartbeats"
        );
        // A heartbeat pushes the deadline out.
        let hb = now + Duration::from_millis(90);
        assert_eq!(t.extend(0, hb), Some(0));
        assert!(t.expired(now + Duration::from_millis(101)).is_empty());
        assert_eq!(t.expired(hb + Duration::from_millis(101)), vec![(0, 0)]);
    }

    #[test]
    fn stale_results_from_expired_leases_are_dropped() {
        let mut t = table(1, 3);
        let now = Instant::now();
        t.lease(0, 0, now);
        // Lease expires; supervisor fails the slot and requeues.
        t.fail(0, now).unwrap();
        // The old worker's result arrives late: no lease on slot 0 → dropped.
        assert_eq!(t.complete(0, Stats::default()), None);
        assert!(t.unfinished(), "task is requeued, not done");
    }

    #[test]
    fn abandoned_tasks_are_distinguishable() {
        let mut t = table(2, 3);
        let now = Instant::now();
        t.lease(0, 0, now);
        t.complete(0, Stats::default());
        assert_eq!(t.abandon_unfinished(), 1);
        let outcomes = t.outcomes();
        assert!(matches!(outcomes[0], Outcome::Done(_)));
        assert!(matches!(outcomes[1], Outcome::Abandoned));
    }

    #[test]
    fn preload_done_skips_dispatch() {
        let mut t = table(2, 3);
        let stats = Stats {
            executions: 5,
            ..Stats::default()
        };
        t.preload_done(0, stats);
        assert_eq!(t.next_ready(Instant::now()), Some(1));
        let now = Instant::now();
        t.lease(1, 0, now);
        t.complete(0, Stats::default());
        let outcomes = t.outcomes();
        match &outcomes[0] {
            Outcome::Done(s) => assert_eq!(s.executions, 5),
            other => panic!("expected preloaded Done, got {other:?}"),
        }
    }
}
