//! Typed errors for loading campaign state from disk.
//!
//! Every variant renders an *actionable* message: what file is bad, what
//! exactly is wrong with it, and what the operator can do about it.

use std::path::PathBuf;

/// Failure to load a journal or cache entry.
#[derive(Debug)]
pub enum ParseError {
    /// The file could not be read or written at the OS level.
    Io {
        /// File involved.
        path: PathBuf,
        /// Underlying OS error.
        error: std::io::Error,
    },
    /// The file exists but does not start with the expected magic header —
    /// it is not (a current version of) the format we expect.
    BadMagic {
        /// File involved.
        path: PathBuf,
        /// What was found at the start of the file, for the error message.
        found: String,
        /// The header that was expected.
        expected: &'static str,
    },
    /// The file has a valid header but a payload that cannot be decoded.
    Malformed {
        /// File involved.
        path: PathBuf,
        /// What could not be decoded.
        detail: String,
    },
    /// A journal belongs to a different campaign configuration than the
    /// one being resumed (e.g. the benchmark filter or split cap changed).
    WrongCampaign {
        /// File involved.
        path: PathBuf,
        /// Which parameter differs, and how.
        detail: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io { path, error } => {
                write!(f, "cannot access {}: {error}", path.display())
            }
            ParseError::BadMagic {
                path,
                found,
                expected,
            } => write!(
                f,
                "{} is not a {expected} file (starts with {found:?}) — \
                 point --journal/--cache-dir at a path this tool owns, or \
                 delete the file if it is stale",
                path.display()
            ),
            ParseError::Malformed { path, detail } => write!(
                f,
                "{} is not usable: {detail} — it may be a truncated or \
                 corrupted write from an interrupted run; delete it to \
                 start the campaign from scratch",
                path.display()
            ),
            ParseError::WrongCampaign { path, detail } => write!(
                f,
                "{} was written by a different campaign configuration \
                 ({detail}) — resume with the original flags, or delete \
                 the journal to start over",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}
