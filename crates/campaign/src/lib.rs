//! Fault-tolerant campaign supervision for the cdsspec model checker.
//!
//! A *campaign* checks every benchmark in the registry (or a filtered
//! subset) and renders one report. This crate makes campaigns survive the
//! real world:
//!
//! - **Process isolation** ([`supervisor`], [`worker`]): shards run in
//!   worker *subprocesses*, so a crash — a wedged allocator, a `kill -9`,
//!   an OOM kill — costs one shard's CPU time, never the campaign.
//! - **Shard leases** ([`lease`]): every dispatched shard has an owner
//!   and a heartbeat-extended deadline; expired or orphaned shards are
//!   re-dispatched with exponential backoff, and shards that repeatedly
//!   crash their worker are quarantined and reported as *suspect*.
//! - **Journaled checkpoints** ([`journal`]): campaign progress is an
//!   append-only, CRC-framed, fsync'd record log; a campaign killed at
//!   any instant resumes from the last durable record, and a torn tail
//!   is truncated away on open.
//! - **Result cache** ([`cache`]): completed per-benchmark results are
//!   content-addressed by `(structure, spec hash, config hash)`, so
//!   re-running an unchanged campaign is nearly free — and a cached row
//!   renders byte-identically to a live one.
//!
//! The determinism argument underpinning all of the above (retries and
//! cache hits can never change reported numbers) is spelled out in
//! [`campaign`] and in `ARCHITECTURE.md`.
//!
//! The CLI binary is `cdsspec-campaign`; see the README quickstart.
//!
//! # Exit codes
//!
//! The single source of truth for the `cdsspec-campaign` process exit
//! codes (asserted by the integration tests, used by CI):
//!
//! | code | constant | meaning |
//! |------|----------|---------|
//! | 0 | [`EXIT_CLEAN`] | campaign completed, no bugs found |
//! | 1 | [`EXIT_ERROR`] | usage or internal error (bad flags, unusable journal) |
//! | 2 | [`EXIT_BUG`] | campaign completed and found at least one bug |
//! | 3 | [`EXIT_RESUMABLE`] | incomplete but resumable: halted, suspect or abandoned shards |

#![warn(missing_docs)]

/// Campaign completed; no bugs.
pub const EXIT_CLEAN: i32 = 0;
/// Usage or internal error.
pub const EXIT_ERROR: i32 = 1;
/// Campaign completed; at least one bug was found.
pub const EXIT_BUG: i32 = 2;
/// Campaign incomplete but resumable (halted mid-run, or some shards are
/// suspect/abandoned); re-run with the same `--journal` to continue.
pub const EXIT_RESUMABLE: i32 = 3;

pub mod cache;
pub mod campaign;
pub mod daemon;
pub mod error;
pub mod fsio;
pub mod hash;
pub mod journal;
pub mod json;
pub mod lease;
pub mod net;
pub mod proto;
pub mod supervisor;
pub mod wire;
pub mod worker;

pub use cache::{CacheKey, ResultCache};
pub use campaign::{run_campaign, run_campaign_with, CampaignOpts, CampaignOutcome};
pub use daemon::{run_daemon, run_daemon_on, DaemonOpts};
pub use error::ParseError;
pub use journal::{Journal, Recovery};
pub use lease::{Outcome, TaskSpec, TaskTable};
pub use net::{AttachOpts, CampaignRequest, StatusReport};
pub use supervisor::{Supervisor, SupervisorOpts, SupervisorStats, Transport, WorkerLink};
pub use worker::{worker_main, WorkerOpts};
