//! The multi-process campaign supervisor.
//!
//! A fixed pool of worker *links* executes tasks from a [`TaskTable`].
//! Historically a link was always a subprocess (the same binary
//! re-invoked with `--worker-mode`); since the networked-campaign work
//! the pool is generic over a [`Transport`] that provisions links, so
//! the same lease, heartbeat, epoch-tagging, and requeue logic drives
//! local subprocesses and remote TCP workers unchanged. All scheduling
//! decisions live here; all crash-isolation comes from the link
//! boundary (process exit or socket death):
//!
//! - Each dispatched task is covered by a **lease**. Workers heartbeat
//!   while running; a lease that outlives its deadline means the worker
//!   is wedged or dead, so the supervisor kills the link and requeues
//!   the shard with exponential backoff (capped at
//!   [`crate::lease::MAX_REQUEUE_BACKOFF`]).
//! - A worker death (crash, chaos kill, kill -9 from outside, TCP
//!   disconnect) surfaces as EOF on its link; its leased shard requeues
//!   the same way. Partial output is discarded wholesale — only
//!   complete, checksummed `result` lines ever reach the merge — so a
//!   rerun is byte-identical to an undisturbed run.
//! - A shard that keeps killing workers quarantines after
//!   `max_attempts` dispatches (reported as *suspect*), and a slot that
//!   keeps dying in quick succession is retired after
//!   [`Supervisor::FAST_DEATH_CAP`] consecutive deaths. The attempt cap
//!   is below the slot cap, so a poison shard quarantines before it can
//!   take the pool down.
//! - If every slot dies anyway, remaining tasks are *abandoned* and the
//!   campaign reports a resumable exit instead of spinning. Likewise, a
//!   transport that stays [`Provision::Unavailable`] (no remote worker
//!   attached) for longer than `attach_timeout` abandons the batch
//!   rather than waiting forever.
//!
//! Chaos mode (`chaos_kill_pct`) kills a freshly-dispatched worker with
//! seeded probability — only on a task's **first** attempt, so fault
//! injection exercises every recovery path yet can never quarantine a
//! healthy shard. CI uses it to prove kill-tolerance by diffing a chaos
//! campaign against an in-process run.

use crate::lease::{FailOutcome, TaskTable};
use crate::proto::{FromWorker, ToWorker};
use cdsspec_mc::{Config, Stats};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Supervisor tuning.
#[derive(Clone, Debug)]
pub struct SupervisorOpts {
    /// Worker link slots (subprocesses or attached remote workers).
    pub workers: usize,
    /// Explorer threads inside each worker.
    pub worker_threads: usize,
    /// Lease duration granted per dispatch/heartbeat.
    pub lease: Duration,
    /// Heartbeat interval workers are asked to use.
    pub heartbeat: Duration,
    /// Dispatch attempts per task before quarantine.
    pub max_attempts: u32,
    /// Probability (percent, 0–100) of chaos-killing the worker right
    /// after a task's first dispatch.
    pub chaos_kill_pct: u32,
    /// Seed for the chaos RNG.
    pub chaos_seed: u64,
    /// Forwarded to workers: benchmark name on which to `abort()`
    /// (fault-injection of a poison shard).
    pub poison: Option<String>,
    /// Ordering sites every dispatched task weakens before checking
    /// (Figure 8-style fault injection; empty = default orderings).
    pub weaken: Vec<usize>,
    /// Worker executable; `None` = `std::env::current_exe()`.
    pub worker_exe: Option<PathBuf>,
    /// How long the whole pool may sit with zero live links and zero
    /// retired slots (a transport with no workers attached yet) before
    /// the batch is abandoned as resumable. Subprocess transports spawn
    /// on demand and never get near this; it exists so a daemon
    /// campaign with no attached remote workers fails fast instead of
    /// spinning forever.
    pub attach_timeout: Duration,
}

impl Default for SupervisorOpts {
    fn default() -> Self {
        SupervisorOpts {
            workers: 2,
            worker_threads: 1,
            lease: Duration::from_secs(30),
            heartbeat: Duration::from_millis(500),
            max_attempts: 3,
            chaos_kill_pct: 0,
            chaos_seed: 0,
            poison: None,
            weaken: Vec::new(),
            worker_exe: None,
            attach_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters describing what the pool went through.
#[derive(Clone, Copy, Debug, Default)]
pub struct SupervisorStats {
    /// Worker links provisioned (including respawns/re-attaches).
    pub spawns: u64,
    /// Worker deaths observed (all causes, chaos included).
    pub worker_deaths: u64,
    /// Deaths injected by chaos mode.
    pub chaos_kills: u64,
    /// Results that arrived after their lease had been revoked and were
    /// dropped (their shard was recomputed; merging both would double
    /// count).
    pub stale_results: u64,
    /// Slots permanently retired after repeated fast deaths.
    pub dead_slots: u64,
    /// Tasks quarantined at the attempt cap.
    pub quarantined: u64,
    /// Tasks dispatched to workers (first attempts and retries alike).
    pub dispatches: u64,
    /// Tasks sent back to `Pending` after a worker failure (the retry
    /// half of `worker_deaths` + in-worker errors; quarantines are
    /// counted separately).
    pub requeues: u64,
}

/// Per-slot counters, surfaced in the final campaign report so requeue
/// and reconnect churn is visible instead of silently absorbed.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlotStats {
    /// Links provisioned on this slot (spawns or remote re-attaches).
    pub spawns: u64,
    /// Link deaths observed on this slot.
    pub deaths: u64,
    /// Tasks requeued because this slot's worker failed them.
    pub requeues: u64,
    /// Tasks this slot completed.
    pub completed: u64,
}

/// One transport event: a complete protocol line from a worker link,
/// or the link's death. Tagged with the slot index and the provision
/// epoch so output from a revoked incarnation can be dropped.
pub enum Event {
    /// One complete NDJSON line from the link on `(slot, epoch)`.
    Line(usize, u64, String),
    /// The link on `(slot, epoch)` died (EOF / socket close).
    Eof(usize, u64),
}

/// Result of asking a [`Transport`] for a worker link.
pub enum Provision {
    /// A live link, ready for [`ToWorker`] messages.
    Link(Box<dyn WorkerLink>),
    /// No worker is available *right now* but one may appear (e.g. no
    /// remote worker attached yet). Not a failure: the slot is not
    /// charged a death and the supervisor retries on the next tick.
    Unavailable,
    /// Provisioning failed outright (spawn error). The slot is charged
    /// a death: backed off and eventually retired.
    Failed,
}

/// A live bidirectional channel to one worker.
///
/// Implementations must have delivered every incoming protocol line as
/// [`Event::Line`] and exactly one [`Event::Eof`] on the channel given
/// to [`Transport::provision`], tagged with that provision's
/// `(slot, epoch)`.
pub trait WorkerLink: Send {
    /// Send one message; `false` means the link is dead (the supervisor
    /// treats it like any other worker death).
    fn send(&mut self, msg: &ToWorker) -> bool;
    /// Hard-kill the worker behind the link (SIGKILL / socket
    /// shutdown). Idempotent; called on lease expiry and chaos kills.
    fn kill(&mut self);
    /// Graceful disposal at batch/campaign end: a subprocess link sends
    /// `Exit` and reaps the child; a network link returns the still-
    /// live worker to its registry for the next campaign.
    fn release(self: Box<Self>);
}

/// Provisions [`WorkerLink`]s for supervisor slots. The transport owns
/// *where* workers come from (spawned subprocesses, attached TCP
/// connections); the supervisor owns every scheduling decision.
pub trait Transport: Send {
    /// Try to produce a link for `slot`. The transport must arrange for
    /// the link's incoming lines and eventual EOF to arrive on `tx`
    /// tagged `(slot, epoch)`.
    fn provision(&mut self, slot: usize, epoch: u64, tx: &mpsc::Sender<Event>) -> Provision;
}

struct Slot {
    link: Option<Box<dyn WorkerLink>>,
    /// Provision generation; events tagged with an older epoch are stale.
    epoch: u64,
    /// Consecutive deaths without a completed task in between.
    fast_deaths: u32,
    /// Earliest instant a re-provision may happen (death backoff).
    respawn_after: Instant,
    /// Permanently retired.
    dead: bool,
    stats: SlotStats,
}

/// The worker pool + event loop. One instance supervises a whole
/// campaign; [`Supervisor::run_batch`] drives one task table to
/// completion at a time, reusing live workers across batches.
pub struct Supervisor {
    opts: SupervisorOpts,
    transport: Box<dyn Transport>,
    slots: Vec<Slot>,
    tx: mpsc::Sender<Event>,
    rx: mpsc::Receiver<Event>,
    next_epoch: u64,
    rng: StdRng,
    /// Counters (readable between batches).
    pub stats: SupervisorStats,
}

impl Supervisor {
    /// Consecutive fast deaths that retire a slot. Strictly greater than
    /// the default task attempt cap, so a poison shard quarantines before
    /// any slot is retired.
    pub const FAST_DEATH_CAP: u32 = 5;

    /// Base backoff applied before re-provisioning a slot after a death
    /// (doubles per consecutive death, capped at
    /// [`Supervisor::MAX_RESPAWN_BACKOFF`]).
    const RESPAWN_BACKOFF: Duration = Duration::from_millis(20);

    /// Hard ceiling on the per-slot respawn backoff. Keeps a slot that
    /// has died a few times from sitting out for unbounded stretches:
    /// the exponential curve exists to damp crash loops, not to retire
    /// the slot by stealth.
    pub const MAX_RESPAWN_BACKOFF: Duration = Duration::from_secs(1);

    /// Event-loop poll interval (bounds lease-expiry detection latency).
    const POLL: Duration = Duration::from_millis(25);

    /// A pool with `opts.workers` empty slots over the default
    /// subprocess transport (workers spawn lazily on first dispatch).
    pub fn new(opts: SupervisorOpts) -> Supervisor {
        let transport = SubprocessTransport {
            worker_exe: opts.worker_exe.clone(),
            heartbeat: opts.heartbeat,
            worker_threads: opts.worker_threads,
            poison: opts.poison.clone(),
        };
        Supervisor::with_transport(opts, Box::new(transport))
    }

    /// A pool with `opts.workers` empty slots over an arbitrary
    /// transport (the networked daemon passes its attach registry).
    pub fn with_transport(opts: SupervisorOpts, transport: Box<dyn Transport>) -> Supervisor {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let slots = (0..opts.workers.max(1))
            .map(|_| Slot {
                link: None,
                epoch: 0,
                fast_deaths: 0,
                respawn_after: now,
                dead: false,
                stats: SlotStats::default(),
            })
            .collect();
        let rng = StdRng::seed_from_u64(opts.chaos_seed);
        Supervisor {
            opts,
            transport,
            slots,
            tx,
            rx,
            next_epoch: 0,
            rng,
            stats: SupervisorStats::default(),
        }
    }

    /// Per-slot counters, in slot order (readable between batches).
    pub fn slot_stats(&self) -> Vec<SlotStats> {
        self.slots.iter().map(|s| s.stats).collect()
    }

    /// Drive `table` until every task is terminal (`Done`, `Quarantined`,
    /// or — if the whole pool dies — abandoned). `on_complete` fires once
    /// per completed task, in completion order, before the task is
    /// considered durable (the campaign journals there).
    pub fn run_batch(
        &mut self,
        base_config: &Config,
        table: &mut TaskTable,
        mut on_complete: impl FnMut(usize, &Stats),
    ) {
        let mut linkless_since: Option<Instant> = None;
        while table.unfinished() {
            let now = Instant::now();

            // Revoke expired leases: kill the wedged worker, requeue the
            // shard. The epoch bump makes any in-flight output stale.
            for (_, slot) in table.expired(now) {
                self.fail_slot(slot, table, now);
            }

            // Re-provision slots whose backoff has elapsed.
            for i in 0..self.slots.len() {
                if !self.slots[i].dead
                    && self.slots[i].link.is_none()
                    && self.slots[i].respawn_after <= now
                {
                    self.provision_slot(i, now);
                }
            }

            // Dispatch ready tasks to idle live workers.
            while let Some(id) = table.next_ready(now) {
                let Some(slot) = self.idle_slot(table) else {
                    break;
                };
                self.dispatch(id, slot, base_config, table, now);
            }

            if self.slots.iter().all(|s| s.dead) {
                table.abandon_unfinished();
                break;
            }

            // A pool with zero links (and at least one non-retired slot,
            // or we'd have broken above) is waiting on the transport. A
            // subprocess transport resolves this within one tick; a
            // network transport may wait on a worker attaching. Give it
            // `attach_timeout`, then abandon the batch as resumable.
            if self.slots.iter().all(|s| s.link.is_none()) {
                let since = *linkless_since.get_or_insert(now);
                if now.duration_since(since) >= self.opts.attach_timeout {
                    table.abandon_unfinished();
                    break;
                }
            } else {
                linkless_since = None;
            }

            match self.rx.recv_timeout(Self::POLL) {
                Ok(ev) => {
                    self.handle(ev, table, &mut on_complete);
                    while let Ok(ev) = self.rx.try_recv() {
                        self.handle(ev, table, &mut on_complete);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("supervisor holds a sender")
                }
            }
        }
    }

    /// Gracefully dispose of every live link (subprocesses are asked to
    /// exit and reaped; remote workers are returned to their registry).
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if let Some(link) = slot.link.take() {
                link.release();
            }
        }
    }

    fn idle_slot(&self, table: &TaskTable) -> Option<usize> {
        (0..self.slots.len()).find(|&i| {
            !self.slots[i].dead && self.slots[i].link.is_some() && table.leased_by(i).is_none()
        })
    }

    fn dispatch(
        &mut self,
        id: usize,
        slot: usize,
        base_config: &Config,
        table: &mut TaskTable,
        now: Instant,
    ) {
        let spec = table.spec(id).clone();
        table.lease(id, slot, now);
        self.stats.dispatches += 1;
        let mut config = base_config.clone();
        config.max_executions = spec.max_executions;
        let msg = ToWorker::Run {
            task: id as u64,
            bench: spec.bench,
            shard: spec.shard,
            config,
            weaken: self.opts.weaken.clone(),
        };
        let sent = match &mut self.slots[slot].link {
            Some(link) => link.send(&msg),
            None => false,
        };
        if !sent {
            // The worker died between provision and dispatch; normal
            // failure path (requeue + re-provision with backoff).
            self.fail_slot(slot, table, now);
            return;
        }
        // Chaos: on a task's FIRST dispatch only, kill the worker that
        // just received it. Recovery (requeue + respawn) must reproduce
        // the exact same campaign result.
        if self.opts.chaos_kill_pct > 0
            && table.attempts(id) == 1
            && self.rng.gen_range(0..100u32) < self.opts.chaos_kill_pct
        {
            self.stats.chaos_kills += 1;
            self.fail_slot(slot, table, now);
        }
    }

    fn provision_slot(&mut self, slot: usize, now: Instant) {
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        match self.transport.provision(slot, epoch, &self.tx) {
            Provision::Link(link) => {
                self.slots[slot].epoch = epoch;
                self.slots[slot].link = Some(link);
                self.stats.spawns += 1;
                self.slots[slot].stats.spawns += 1;
            }
            Provision::Unavailable => {
                // Nobody to link to yet (no remote worker attached).
                // Not the slot's fault: retry next tick, no backoff.
            }
            Provision::Failed => self.retire_or_backoff(slot, now),
        }
    }

    /// Kill the worker on `slot` (if any), requeue or quarantine its
    /// lease, and schedule a backed-off re-provision (or retire the
    /// slot).
    fn fail_slot(&mut self, slot: usize, table: &mut TaskTable, now: Instant) {
        // Bump the epoch first: everything the dying worker already wrote
        // is stale from this point on.
        self.next_epoch += 1;
        self.slots[slot].epoch = self.next_epoch;
        if let Some(mut link) = self.slots[slot].link.take() {
            link.kill();
        }
        self.stats.worker_deaths += 1;
        self.slots[slot].stats.deaths += 1;
        self.charge_task_failure(slot, table, now);
        self.retire_or_backoff(slot, now);
    }

    /// Requeue-or-quarantine the task leased by `slot`, updating the
    /// requeue/quarantine counters.
    fn charge_task_failure(&mut self, slot: usize, table: &mut TaskTable, now: Instant) {
        if let Some((_, outcome)) = table.fail(slot, now) {
            match outcome {
                FailOutcome::Quarantined { .. } => self.stats.quarantined += 1,
                FailOutcome::Requeued { .. } => {
                    self.stats.requeues += 1;
                    self.slots[slot].stats.requeues += 1;
                }
            }
        }
    }

    fn retire_or_backoff(&mut self, slot: usize, now: Instant) {
        let s = &mut self.slots[slot];
        s.fast_deaths += 1;
        if s.fast_deaths >= Self::FAST_DEATH_CAP {
            s.dead = true;
            self.stats.dead_slots += 1;
        } else {
            let exp = (s.fast_deaths - 1).min(10);
            let delay = (Self::RESPAWN_BACKOFF * 2u32.pow(exp)).min(Self::MAX_RESPAWN_BACKOFF);
            s.respawn_after = now + delay;
        }
    }

    fn handle(
        &mut self,
        ev: Event,
        table: &mut TaskTable,
        on_complete: &mut impl FnMut(usize, &Stats),
    ) {
        let now = Instant::now();
        match ev {
            Event::Line(slot, epoch, line) => {
                if self.slots[slot].epoch != epoch {
                    return; // output of a revoked/killed incarnation
                }
                match FromWorker::decode(&line) {
                    Ok(FromWorker::Hello { .. }) => {}
                    Ok(FromWorker::Heartbeat { .. }) => {
                        table.extend(slot, now);
                    }
                    Ok(FromWorker::Result { stats, .. }) => {
                        if let Some(id) = table.complete(slot, stats.clone()) {
                            // A completed task proves the slot healthy.
                            self.slots[slot].fast_deaths = 0;
                            self.slots[slot].stats.completed += 1;
                            on_complete(id, &stats);
                        } else {
                            self.stats.stale_results += 1;
                        }
                    }
                    Ok(FromWorker::Error { message, .. }) => {
                        // The task failed *inside* a healthy worker (it
                        // replied cleanly): charge the task, not the slot.
                        self.charge_task_failure(slot, table, now);
                        let _ = message;
                    }
                    Err(_) => {
                        // Protocol corruption — indistinguishable from a
                        // half-dead worker. Kill and recover.
                        self.fail_slot(slot, table, now);
                    }
                }
            }
            Event::Eof(slot, epoch) => {
                if self.slots[slot].epoch != epoch {
                    return; // we killed it ourselves; already handled
                }
                self.fail_slot(slot, table, now);
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(mut link) = slot.link.take() {
                link.kill();
            }
        }
    }
}

/// The classic transport: spawn the campaign binary with
/// `--worker-mode` and speak NDJSON over its stdin/stdout.
struct SubprocessTransport {
    worker_exe: Option<PathBuf>,
    heartbeat: Duration,
    worker_threads: usize,
    poison: Option<String>,
}

impl Transport for SubprocessTransport {
    fn provision(&mut self, slot: usize, epoch: u64, tx: &mpsc::Sender<Event>) -> Provision {
        let exe = match &self.worker_exe {
            Some(p) => p.clone(),
            None => match std::env::current_exe() {
                Ok(p) => p,
                Err(_) => return Provision::Failed,
            },
        };
        let mut cmd = Command::new(exe);
        cmd.arg("--worker-mode")
            .arg("--heartbeat-ms")
            .arg(self.heartbeat.as_millis().to_string())
            .arg("--worker-threads")
            .arg(self.worker_threads.max(1).to_string());
        if let Some(poison) = &self.poison {
            cmd.arg("--poison").arg(poison);
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(_) => return Provision::Failed,
        };
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(l) => {
                        if tx.send(Event::Line(slot, epoch, l)).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send(Event::Eof(slot, epoch));
        });
        Provision::Link(Box::new(SubprocessLink {
            child: Some((child, Some(stdin))),
        }))
    }
}

struct SubprocessLink {
    child: Option<(Child, Option<ChildStdin>)>,
}

impl WorkerLink for SubprocessLink {
    fn send(&mut self, msg: &ToWorker) -> bool {
        match &mut self.child {
            Some((_, Some(stdin))) => writeln!(stdin, "{}", msg.encode()).is_ok(),
            _ => false,
        }
    }

    fn kill(&mut self) {
        if let Some((mut child, stdin)) = self.child.take() {
            drop(stdin);
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn release(mut self: Box<Self>) {
        if let Some((_, stdin)) = &mut self.child {
            if let Some(stdin) = stdin {
                let _ = writeln!(stdin, "{}", ToWorker::Exit.encode());
            }
            *stdin = None; // EOF backstop in case the Exit write raced
        }
        if let Some((mut child, _)) = self.child.take() {
            let _ = child.wait();
        }
    }
}

impl Drop for SubprocessLink {
    fn drop(&mut self) {
        self.kill();
    }
}
