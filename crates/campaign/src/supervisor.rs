//! The multi-process campaign supervisor.
//!
//! A fixed pool of worker *subprocesses* (the same binary re-invoked with
//! `--worker-mode`) executes tasks from a [`TaskTable`]. All scheduling
//! decisions live here; all crash-isolation comes from the process
//! boundary:
//!
//! - Each dispatched task is covered by a **lease**. Workers heartbeat
//!   while running; a lease that outlives its deadline means the worker
//!   is wedged or dead, so the supervisor SIGKILLs it and requeues the
//!   shard with exponential backoff.
//! - A worker death (crash, chaos kill, kill -9 from outside) surfaces as
//!   EOF on its stdout; its leased shard requeues the same way. Partial
//!   output is discarded wholesale — only complete, checksummed `result`
//!   lines ever reach the merge — so a rerun is byte-identical to an
//!   undisturbed run.
//! - A shard that keeps killing workers quarantines after
//!   `max_attempts` dispatches (reported as *suspect*), and a slot that
//!   keeps dying in quick succession is retired after
//!   [`Supervisor::FAST_DEATH_CAP`] consecutive deaths. The attempt cap
//!   is below the slot cap, so a poison shard quarantines before it can
//!   take the pool down.
//! - If every slot dies anyway, remaining tasks are *abandoned* and the
//!   campaign reports a resumable exit instead of spinning.
//!
//! Chaos mode (`chaos_kill_pct`) kills a freshly-dispatched worker with
//! seeded probability — only on a task's **first** attempt, so fault
//! injection exercises every recovery path yet can never quarantine a
//! healthy shard. CI uses it to prove kill-tolerance by diffing a chaos
//! campaign against an in-process run.

use crate::lease::{FailOutcome, TaskTable};
use crate::proto::{FromWorker, ToWorker};
use cdsspec_mc::{Config, Stats};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Supervisor tuning.
#[derive(Clone, Debug)]
pub struct SupervisorOpts {
    /// Worker subprocess slots.
    pub workers: usize,
    /// Explorer threads inside each worker.
    pub worker_threads: usize,
    /// Lease duration granted per dispatch/heartbeat.
    pub lease: Duration,
    /// Heartbeat interval workers are asked to use.
    pub heartbeat: Duration,
    /// Dispatch attempts per task before quarantine.
    pub max_attempts: u32,
    /// Probability (percent, 0–100) of chaos-killing the worker right
    /// after a task's first dispatch.
    pub chaos_kill_pct: u32,
    /// Seed for the chaos RNG.
    pub chaos_seed: u64,
    /// Forwarded to workers: benchmark name on which to `abort()`
    /// (fault-injection of a poison shard).
    pub poison: Option<String>,
    /// Ordering sites every dispatched task weakens before checking
    /// (Figure 8-style fault injection; empty = default orderings).
    pub weaken: Vec<usize>,
    /// Worker executable; `None` = `std::env::current_exe()`.
    pub worker_exe: Option<PathBuf>,
}

impl Default for SupervisorOpts {
    fn default() -> Self {
        SupervisorOpts {
            workers: 2,
            worker_threads: 1,
            lease: Duration::from_secs(30),
            heartbeat: Duration::from_millis(500),
            max_attempts: 3,
            chaos_kill_pct: 0,
            chaos_seed: 0,
            poison: None,
            weaken: Vec::new(),
            worker_exe: None,
        }
    }
}

/// Counters describing what the pool went through.
#[derive(Clone, Copy, Debug, Default)]
pub struct SupervisorStats {
    /// Worker processes spawned (including respawns).
    pub spawns: u64,
    /// Worker deaths observed (all causes, chaos included).
    pub worker_deaths: u64,
    /// Deaths injected by chaos mode.
    pub chaos_kills: u64,
    /// Results that arrived after their lease had been revoked and were
    /// dropped (their shard was recomputed; merging both would double
    /// count).
    pub stale_results: u64,
    /// Slots permanently retired after repeated fast deaths.
    pub dead_slots: u64,
    /// Tasks quarantined at the attempt cap.
    pub quarantined: u64,
}

enum Event {
    Line(usize, u64, String),
    Eof(usize, u64),
}

struct Slot {
    child: Option<(Child, ChildStdin)>,
    /// Spawn generation; events tagged with an older epoch are stale.
    epoch: u64,
    /// Consecutive deaths without a completed task in between.
    fast_deaths: u32,
    /// Earliest instant a respawn may happen (death backoff).
    respawn_after: Instant,
    /// Permanently retired.
    dead: bool,
}

/// The worker pool + event loop. One instance supervises a whole
/// campaign; [`Supervisor::run_batch`] drives one task table to
/// completion at a time, reusing live workers across batches.
pub struct Supervisor {
    opts: SupervisorOpts,
    slots: Vec<Slot>,
    tx: mpsc::Sender<Event>,
    rx: mpsc::Receiver<Event>,
    next_epoch: u64,
    rng: StdRng,
    /// Counters (readable between batches).
    pub stats: SupervisorStats,
}

impl Supervisor {
    /// Consecutive fast deaths that retire a slot. Strictly greater than
    /// the default task attempt cap, so a poison shard quarantines before
    /// any slot is retired.
    pub const FAST_DEATH_CAP: u32 = 5;

    /// Base backoff applied before respawning a slot after a death
    /// (doubles per consecutive death).
    const RESPAWN_BACKOFF: Duration = Duration::from_millis(20);

    /// Event-loop poll interval (bounds lease-expiry detection latency).
    const POLL: Duration = Duration::from_millis(25);

    /// A pool with `opts.workers` empty slots; workers spawn lazily on
    /// first dispatch.
    pub fn new(opts: SupervisorOpts) -> Supervisor {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let slots = (0..opts.workers.max(1))
            .map(|_| Slot {
                child: None,
                epoch: 0,
                fast_deaths: 0,
                respawn_after: now,
                dead: false,
            })
            .collect();
        let rng = StdRng::seed_from_u64(opts.chaos_seed);
        Supervisor {
            opts,
            slots,
            tx,
            rx,
            next_epoch: 0,
            rng,
            stats: SupervisorStats::default(),
        }
    }

    /// Drive `table` until every task is terminal (`Done`, `Quarantined`,
    /// or — if the whole pool dies — abandoned). `on_complete` fires once
    /// per completed task, in completion order, before the task is
    /// considered durable (the campaign journals there).
    pub fn run_batch(
        &mut self,
        base_config: &Config,
        table: &mut TaskTable,
        mut on_complete: impl FnMut(usize, &Stats),
    ) {
        while table.unfinished() {
            let now = Instant::now();

            // Revoke expired leases: kill the wedged worker, requeue the
            // shard. The epoch bump makes any in-flight output stale.
            for (_, slot) in table.expired(now) {
                self.fail_slot(slot, table, now);
            }

            // Respawn slots whose backoff has elapsed.
            for i in 0..self.slots.len() {
                if !self.slots[i].dead
                    && self.slots[i].child.is_none()
                    && self.slots[i].respawn_after <= now
                {
                    self.spawn_worker(i, now);
                }
            }

            // Dispatch ready tasks to idle live workers.
            while let Some(id) = table.next_ready(now) {
                let Some(slot) = self.idle_slot(table) else {
                    break;
                };
                self.dispatch(id, slot, base_config, table, now);
            }

            if self.slots.iter().all(|s| s.dead) {
                table.abandon_unfinished();
                break;
            }

            match self.rx.recv_timeout(Self::POLL) {
                Ok(ev) => {
                    self.handle(ev, table, &mut on_complete);
                    while let Ok(ev) = self.rx.try_recv() {
                        self.handle(ev, table, &mut on_complete);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("supervisor holds a sender")
                }
            }
        }
    }

    /// Ask every live worker to exit and reap it.
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if let Some((_, stdin)) = &mut slot.child {
                let _ = writeln!(stdin, "{}", ToWorker::Exit.encode());
            }
            if let Some((mut child, stdin)) = slot.child.take() {
                drop(stdin); // EOF backstop in case the Exit write raced
                let _ = child.wait();
            }
        }
    }

    fn idle_slot(&self, table: &TaskTable) -> Option<usize> {
        (0..self.slots.len()).find(|&i| {
            !self.slots[i].dead && self.slots[i].child.is_some() && table.leased_by(i).is_none()
        })
    }

    fn dispatch(
        &mut self,
        id: usize,
        slot: usize,
        base_config: &Config,
        table: &mut TaskTable,
        now: Instant,
    ) {
        let spec = table.spec(id).clone();
        table.lease(id, slot, now);
        let mut config = base_config.clone();
        config.max_executions = spec.max_executions;
        let msg = ToWorker::Run {
            task: id as u64,
            bench: spec.bench,
            shard: spec.shard,
            config,
            weaken: self.opts.weaken.clone(),
        };
        let sent = match &mut self.slots[slot].child {
            Some((_, stdin)) => writeln!(stdin, "{}", msg.encode()).is_ok(),
            None => false,
        };
        if !sent {
            // The worker died between spawn and dispatch; normal failure
            // path (requeue + respawn with backoff).
            self.fail_slot(slot, table, now);
            return;
        }
        // Chaos: on a task's FIRST dispatch only, kill the worker that
        // just received it. Recovery (requeue + respawn) must reproduce
        // the exact same campaign result.
        if self.opts.chaos_kill_pct > 0
            && table.attempts(id) == 1
            && self.rng.gen_range(0..100u32) < self.opts.chaos_kill_pct
        {
            self.stats.chaos_kills += 1;
            self.fail_slot(slot, table, now);
        }
    }

    fn spawn_worker(&mut self, slot: usize, now: Instant) {
        let exe = match &self.opts.worker_exe {
            Some(p) => p.clone(),
            None => match std::env::current_exe() {
                Ok(p) => p,
                Err(_) => {
                    self.retire_or_backoff(slot, now);
                    return;
                }
            },
        };
        let mut cmd = Command::new(exe);
        cmd.arg("--worker-mode")
            .arg("--heartbeat-ms")
            .arg(self.opts.heartbeat.as_millis().to_string())
            .arg("--worker-threads")
            .arg(self.opts.worker_threads.max(1).to_string());
        if let Some(poison) = &self.opts.poison {
            cmd.arg("--poison").arg(poison);
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(_) => {
                self.retire_or_backoff(slot, now);
                return;
            }
        };
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        self.slots[slot].epoch = epoch;
        self.slots[slot].child = Some((child, stdin));
        self.stats.spawns += 1;
        let tx = self.tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(l) => {
                        if tx.send(Event::Line(slot, epoch, l)).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send(Event::Eof(slot, epoch));
        });
    }

    /// Kill the worker on `slot` (if any), requeue or quarantine its
    /// lease, and schedule a backed-off respawn (or retire the slot).
    fn fail_slot(&mut self, slot: usize, table: &mut TaskTable, now: Instant) {
        // Bump the epoch first: everything the dying worker already wrote
        // is stale from this point on.
        self.next_epoch += 1;
        self.slots[slot].epoch = self.next_epoch;
        if let Some((mut child, stdin)) = self.slots[slot].child.take() {
            drop(stdin);
            let _ = child.kill();
            let _ = child.wait();
        }
        self.stats.worker_deaths += 1;
        if let Some((_, outcome)) = table.fail(slot, now) {
            if matches!(outcome, FailOutcome::Quarantined { .. }) {
                self.stats.quarantined += 1;
            }
        }
        self.retire_or_backoff(slot, now);
    }

    fn retire_or_backoff(&mut self, slot: usize, now: Instant) {
        let s = &mut self.slots[slot];
        s.fast_deaths += 1;
        if s.fast_deaths >= Self::FAST_DEATH_CAP {
            s.dead = true;
            self.stats.dead_slots += 1;
        } else {
            let exp = (s.fast_deaths - 1).min(10);
            s.respawn_after = now + Self::RESPAWN_BACKOFF * 2u32.pow(exp);
        }
    }

    fn handle(
        &mut self,
        ev: Event,
        table: &mut TaskTable,
        on_complete: &mut impl FnMut(usize, &Stats),
    ) {
        let now = Instant::now();
        match ev {
            Event::Line(slot, epoch, line) => {
                if self.slots[slot].epoch != epoch {
                    return; // output of a revoked/killed incarnation
                }
                match FromWorker::decode(&line) {
                    Ok(FromWorker::Hello { .. }) => {}
                    Ok(FromWorker::Heartbeat { .. }) => {
                        table.extend(slot, now);
                    }
                    Ok(FromWorker::Result { stats, .. }) => {
                        if let Some(id) = table.complete(slot, stats.clone()) {
                            // A completed task proves the slot healthy.
                            self.slots[slot].fast_deaths = 0;
                            on_complete(id, &stats);
                        } else {
                            self.stats.stale_results += 1;
                        }
                    }
                    Ok(FromWorker::Error { message, .. }) => {
                        // The task failed *inside* a healthy worker (it
                        // replied cleanly): charge the task, not the slot.
                        if let Some((_, outcome)) = table.fail(slot, now) {
                            if matches!(outcome, FailOutcome::Quarantined { .. }) {
                                self.stats.quarantined += 1;
                            }
                        }
                        let _ = message;
                    }
                    Err(_) => {
                        // Protocol corruption — indistinguishable from a
                        // half-dead worker. Kill and recover.
                        self.fail_slot(slot, table, now);
                    }
                }
            }
            Event::Eof(slot, epoch) => {
                if self.slots[slot].epoch != epoch {
                    return; // we killed it ourselves; already handled
                }
                self.fail_slot(slot, table, now);
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some((mut child, stdin)) = slot.child.take() {
                drop(stdin);
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}
