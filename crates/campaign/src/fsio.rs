//! Crash-safe file writes shared by the cache and journal compaction.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Write `bytes` to `path` atomically: write to a temp file in the same
/// directory, fsync it, then `rename` over the destination. Readers see
/// either the old contents or the new, never a torn mix, and a crash
/// leaves at worst an orphaned temp file (which carries the pid so
/// concurrent writers never collide).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(".{file_name}.tmp.{}", std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => tmp_name.clone().into(),
    };

    let result = (|| {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync can fail on
        // filesystems that do not support opening directories; the rename
        // already happened, so treat that as best-effort.
        if let Some(d) = dir {
            if let Ok(dirf) = File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("cdsspec-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.txt");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
