//! Hash primitives for the campaign layer: FNV-1a for content addresses
//! and CRC-32 (IEEE) for journal record framing.
//!
//! Both are implemented locally: the build environment has no crates
//! registry, and the campaign formats need hashes that are *stable across
//! builds and platforms* — `std::hash::Hasher` makes no such promise.

/// 64-bit FNV-1a over a byte slice. Stable, endian-independent, and fast
/// enough for the short identity strings the cache hashes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a, for hashing a structured identity without building
/// an intermediate string.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Fold a `u64` (little-endian) plus a domain-separating tag byte, so
    /// adjacent numeric fields cannot alias by concatenation.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&[0xfe]).update(&v.to_le_bytes())
    }

    /// Fold a length-prefixed string (prefix prevents `"ab","c"` from
    /// colliding with `"a","bc"`).
    pub fn update_str(&mut self, s: &str) -> &mut Self {
        self.update_u64(s.len() as u64).update(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup
/// table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice — the checksum guarding every journal
/// record and cache entry against torn writes and bit rot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // A flipped bit changes the checksum.
        assert_ne!(crc32(b"123456789"), crc32(b"123456788"));
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.update(b"abc");
        assert_eq!(h.finish(), fnv1a64(b"abc"));
    }

    #[test]
    fn fnv_structured_fields_do_not_alias() {
        let mut a = Fnv1a::new();
        a.update_str("ab").update_str("c");
        let mut b = Fnv1a::new();
        b.update_str("a").update_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.update_u64(1).update_u64(2);
        let mut d = Fnv1a::new();
        d.update_u64(2).update_u64(1);
        assert_ne!(c.finish(), d.finish());
    }
}
