//! Offline shim for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace `[patch.crates-io]`-redirects `parking_lot`
//! here. The shim wraps `std::sync` primitives behind the (small) slice of
//! the parking_lot API the workspace uses: non-poisoning `Mutex::lock`,
//! and a `Condvar` whose `wait`/`wait_for` take `&mut MutexGuard`.
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): the
//! model-checker's worker threads unwind on purpose after every abandoned
//! execution, and parking_lot's real mutexes do not poison either.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (std-backed, non-poisoning).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the std
/// guard out and back while the caller keeps a `&mut MutexGuard` — the
/// parking_lot calling convention.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait: did it time out?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the parking_lot `&mut guard` convention.
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
