//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! `[patch.crates-io]`-redirects `proptest` here. It implements the slice
//! of the API the workspace's property tests use — `Strategy` +
//! `prop_map`, `Just`, integer-range strategies, tuples, `prop_oneof!`,
//! `prop::collection::vec`, `prop::option::of`, `any`, `ProptestConfig`,
//! and the `proptest!` / `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` deterministic random samples (seeded
//! from the test's module path + case index). There is **no shrinking** —
//! a failing case panics with the assertion message, and the inputs can be
//! recovered by re-running the same case seed.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Object-safe core (`sample`) plus `Sized`-gated combinators, so
    /// heterogeneous strategies can be boxed for [`OneOf`].
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.0.len());
            self.0[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below_u128(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + rng.below_u128(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generate vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Option` strategy: `None` with probability 1/4 (close to upstream's
    /// default weighting, which favors `Some`).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Generate `Option`s whose `Some` payloads come from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy, via [`any`].
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Per-test configuration. Only `cases` is meaningful in this shim;
    /// the rest exist so `..ProptestConfig::default()` spreads compile.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Ignored (no shrinking in this shim).
        pub max_shrink_iters: u32,
        /// Ignored.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    /// Deterministic SplitMix64 stream used for all sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Debiased uniform draw from `[0, n)`, `n >= 1`.
        pub fn below(&mut self, n: usize) -> usize {
            self.below_u128(n as u128) as usize
        }

        /// As [`Self::below`] over a `u128` span (for full-width ranges).
        pub fn below_u128(&mut self, n: u128) -> u128 {
            debug_assert!(n >= 1);
            let zone = (u64::MAX as u128 + 1) / n * n;
            loop {
                let x = self.next_u64() as u128;
                if x < zone {
                    return x % n;
                }
            }
        }
    }

    /// Build the RNG for one case of one named test: deterministic in
    /// (test name, case index) so failures reproduce across runs.
    pub fn test_rng(name: &str, case: u64) -> TestRng {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        case.hash(&mut h);
        TestRng::from_seed(h.finish())
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Choose uniformly between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `config.cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::test_runner::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn map_and_range(x in even(), y in 3i64..=7) {
            prop_assert!(x.is_multiple_of(2) && x < 100);
            prop_assert!((3..=7).contains(&y));
        }

        #[test]
        fn oneof_and_collections(
            v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8), 5u8..9], 2..6),
            o in prop::option::of(any::<bool>())
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2 || (5..9).contains(&x)));
            let _ = o;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0usize..4, any::<u64>())) {
            prop_assert_eq!(pair.0 < 4, true);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1000, 0u64..1000);
        let mut a = crate::test_runner::test_rng("x", 3);
        let mut b = crate::test_runner::test_rng("x", 3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
