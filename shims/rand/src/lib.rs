//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! `[patch.crates-io]`-redirects `rand` here. Implements only what this
//! workspace uses: `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `Rng::gen_range` over integer ranges.
//!
//! `StdRng` here is SplitMix64 — statistically fine for sampling and
//! fully deterministic per seed, which is all the explorer and history
//! sampler need. It does NOT match upstream rand's ChaCha-based StdRng
//! stream, and upstream makes no cross-version reproducibility promise
//! for StdRng anyway.

/// Core trait for random number generators.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer range).
    ///
    /// Panics if the range is empty, matching upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types sampleable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform draw from `[0, n)` for `n >= 1` using rejection
/// sampling on the top of the 64-bit stream.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n >= 1);
    // Zone is the largest multiple of n that fits in 2^64; rejecting
    // draws above it removes modulo bias.
    let zone = (u64::MAX as u128 + 1) / n * n;
    loop {
        let x = rng.next_u64() as u128;
        if x < zone {
            return x % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (see crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..97), b.gen_range(0usize..97));
        }
    }

    #[test]
    fn in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn covers_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
