//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! `[patch.crates-io]`-redirects `criterion` here. Rather than a
//! statistics harness, each registered benchmark body runs **once** and
//! its wall-clock time is printed — enough for the bench targets to
//! compile, smoke-run, and give a rough timing signal.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }

    /// Register and smoke-run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Register and smoke-run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Register and smoke-run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0 };
    let start = Instant::now();
    f(&mut b);
    let total = start.elapsed();
    println!(
        "bench {label}: {:.3} ms (single smoke run)",
        total.as_secs_f64() * 1e3
    );
}

/// Function+parameter benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Runs the measured closure (once, in this shim).
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `routine` once, keeping its output live via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(5)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_each_target() {
        benches();
    }
}
