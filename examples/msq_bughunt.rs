//! Bug-hunting tour on the Michael & Scott queue (paper §6.4.1).
//!
//! Walks through the checking pipeline on the real M&S queue: the correct
//! version passes; both AutoMO-style known bugs are detected with full
//! diagnostic traces; and a one-step injection sweep over every ordering
//! site shows which edge each parameter carries.
//!
//! ```text
//! cargo run --release --example msq_bughunt
//! ```

use cdsspec::core as spec;
use cdsspec::inject;
use cdsspec::mc;
use cdsspec::prelude::*;
use cdsspec::structures::ms_queue::{self, MsQueue};
use cdsspec::structures::registry::benchmarks;

fn hunt(name: &str, queue_factory: impl Fn() -> MsQueue + Send + Sync + Copy + 'static) {
    let stats = spec::check(Config::default(), ms_queue::make_spec(), move || {
        let q = queue_factory();
        let q1 = q.clone();
        let t = mc::thread::spawn(move || {
            let _ = q1.deq();
        });
        q.enq(1);
        q.enq(2);
        let _ = q.deq();
        t.join();
    });
    println!("== {name} ==");
    println!("{}", stats.summary());
    if let Some(b) = stats.bugs.first() {
        println!("defect: {}", b.bug);
        println!("witness:\n{}", b.trace);
    } else {
        println!("no violations.\n");
    }
}

fn main() {
    hunt("correct M&S queue", MsQueue::new);
    hunt(
        "known bug 1: relaxed enqueue publication",
        MsQueue::known_bug_enq,
    );
    hunt(
        "known bug 2: relaxed dequeue next-load",
        MsQueue::known_bug_deq,
    );

    println!("== full single-site injection sweep ==");
    let bench = benchmarks()
        .into_iter()
        .find(|b| b.name == "M&S Queue")
        .unwrap();
    let config = Config {
        max_executions: 500_000,
        ..Config::default()
    };
    let (row, trials) = inject::inject_benchmark(&bench, &config);
    for t in &trials {
        println!(
            "  {:<22} {:>8} -> {:<8} {}",
            t.site,
            t.from.name(),
            t.to.name(),
            match &t.detected {
                Some(cat) => format!("detected ({cat:?})"),
                None => "not detected".into(),
            }
        );
    }
    println!(
        "\n{} of {} injections detected ({:.0}%).",
        row.detected(),
        row.injections,
        row.rate()
    );
}
