//! The paper's §2.2 worked example: why naive approaches fail for a
//! *relaxed* atomic register, and how justifying prefixes plus the
//! `CONCURRENT` set constrain non-determinism without forbidding it.
//!
//! The tour prints the register's observable behaviors, shows that the
//! specification accepts exactly the C11-legal ones, and demonstrates a
//! property the unconstrained "reads may return anything old" weakening
//! would miss: a same-thread read-after-write must see the write.
//!
//! ```text
//! cargo run --release --example relaxed_register
//! ```

use cdsspec::core as spec;
use cdsspec::mc;
use cdsspec::prelude::*;
use cdsspec::structures::register::{make_spec, Register, SITES};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

fn main() {
    // 1. Enumerate the observable outcomes of a 2-thread relaxed register.
    let outcomes: Arc<Mutex<BTreeSet<(i64, i64)>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let oc = Arc::clone(&outcomes);
    let stats = mc::explore(Config::default(), move || {
        let r = Register::new();
        let r1 = r.clone();
        let t = mc::thread::spawn(move || {
            r1.write(1);
        });
        let first = r.read();
        t.join();
        let second = r.read();
        oc.lock().unwrap().insert((first, second));
    });
    println!("relaxed register outcomes (first read racing write(1), second after join):");
    for (a, b) in outcomes.lock().unwrap().iter() {
        println!("  first = {a}, second = {b}");
    }
    println!("({})\n", stats.summary());
    // The racing read may see 0 or 1; after the join only 1 is possible —
    // that is coherence + happens-before, with zero fences.

    // 2. The CDSSpec specification accepts every one of those behaviors…
    let stats = spec::check(
        Config::default(),
        make_spec(),
        cdsspec::structures::register::unit_test(Ords::defaults(SITES)),
    );
    println!("spec check on the standard unit test: {}", stats.summary());
    assert!(!stats.buggy());

    // 3. …while still rejecting the trivial single-thread violation that a
    // fully unconstrained non-deterministic spec would admit (§2.1): a
    // read-after-write in one thread returning a stale value. We
    // demonstrate by asserting the property inside the model — no
    // execution violates it, so the assertion never fires.
    let stats = spec::check(Config::default(), make_spec(), || {
        let r = Register::new();
        r.write(7);
        let v = r.read();
        mc::mc_assert!(v == 7, "read-after-write returned {}", v);
    });
    println!("single-thread read-after-write: {}", stats.summary());
    assert!(!stats.buggy());
    println!("\njustifying prefixes forbid stale same-thread reads; CONCURRENT permits");
    println!("racing ones — the §2.2 balance, reproduced.");
}
