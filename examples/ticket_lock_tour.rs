//! A tour of the ticket lock (paper §6.1): how a data structure whose
//! ticket counter is *relaxed* still admits a specification, because the
//! synchronization lives on `now_serving`.
//!
//! Demonstrates: (1) the correct lock passes with a mutual-exclusion
//! spec; (2) the protected counter is race-free; (3) weakening either
//! `now_serving` ordering is caught; (4) weakening the *ticket*
//! `fetch_add` further is impossible — it is already relaxed, exactly the
//! paper's observation.
//!
//! ```text
//! cargo run --release --example ticket_lock_tour
//! ```

use cdsspec::core as spec;
use cdsspec::mc;
use cdsspec::prelude::*;
use cdsspec::structures::ticket_lock::{self, TicketLock};

fn main() {
    // 1. Correct lock: two contenders, a protected plain counter.
    let stats = ticket_lock::check(Config::default(), Ords::defaults(ticket_lock::SITES));
    println!("correct ticket lock: {}", stats.summary());
    assert!(!stats.buggy());

    // 2. Mutual exclusion, observed directly: the plain counter always
    // ends at 2 when both threads increment under the lock.
    let stats = spec::check(Config::default(), ticket_lock::make_spec(), || {
        let l = TicketLock::new();
        let c = mc::Data::new(0i64);
        let l1 = l.clone();
        let t = mc::thread::spawn(move || {
            l1.lock();
            c.write(c.read() + 1);
            l1.unlock();
        });
        l.lock();
        c.write(c.read() + 1);
        l.unlock();
        t.join();
        mc::mc_assert!(c.read() == 2, "lost increment: {}", c.read());
    });
    println!("no lost increments: {}", stats.summary());
    assert!(!stats.buggy());

    // 3. Weakening either now_serving ordering breaks the handoff.
    for (idx, label) in [
        (1usize, "lock's acquire load"),
        (3usize, "unlock's release store"),
    ] {
        let mut ords = Ords::defaults(ticket_lock::SITES);
        assert!(ords.weaken(idx));
        let stats = ticket_lock::check(Config::default(), ords);
        println!(
            "weakened {label}: {}",
            match stats.bugs.first() {
                Some(b) => format!("DETECTED — {}", b.bug),
                None => "not detected (unexpected!)".into(),
            }
        );
        assert!(stats.buggy());
    }

    // 4. The ticket fetch_add is already relaxed — nothing to weaken —
    // matching the paper's §6.1 note that the lock synchronizes on
    // now_serving, not on the ticket counter.
    let mut ords = Ords::defaults(ticket_lock::SITES);
    assert!(!ords.weaken(0), "the ticket fetch_add is already relaxed");
    println!("\nticket fetch_add is relaxed by design; only 2 sites are injectable —");
    println!("the paper's Figure 8 row for the ticket lock has exactly 2 injections.");
}
