//! Quickstart: specify and model-check a concurrent data structure in
//! ~80 lines.
//!
//! We build a tiny Treiber-style stack against the modeled atomics, give
//! it a CDSSpec specification (equivalent sequential stack + ordering
//! points), check the correct version, then weaken one memory ordering
//! and watch the checker produce a diagnostic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdsspec::core as spec;
use cdsspec::mc;
use cdsspec::prelude::*;
use mc::MemOrd::{AcqRel, Acquire, Relaxed, Release};

struct Node {
    // Modeled non-atomic fields: the checker race-checks them, which is
    // how a weakened publication becomes visible.
    value: mc::Data<i64>,
    next: mc::Data<*mut Node>,
}

/// A Treiber stack: push/pop CAS the head. `pop` returns -1 when empty.
#[derive(Clone)]
struct Stack {
    obj: u64,
    head: mc::Atomic<*mut Node>,
    /// Ordering used by the successful push CAS (the injection site).
    push_ord: MemOrd,
}

impl Stack {
    fn new(push_ord: MemOrd) -> Self {
        Stack {
            obj: mc::new_object_id(),
            head: mc::Atomic::new(std::ptr::null_mut()),
            push_ord,
        }
    }

    fn push(&self, value: i64) {
        spec::method_begin(self.obj, "push");
        spec::arg(value);
        let node = mc::alloc(Node {
            value: mc::Data::new(value),
            next: mc::Data::new(std::ptr::null_mut()),
        });
        loop {
            let head = self.head.load(Acquire);
            unsafe { (*node).next.write(head) };
            if self
                .head
                .compare_exchange(head, node, self.push_ord, Relaxed)
                .is_ok()
            {
                spec::op_define(); // the successful CAS orders pushes
                break;
            }
            mc::spin_loop();
        }
        spec::method_end(());
    }

    fn pop(&self) -> i64 {
        spec::method_begin(self.obj, "pop");
        let ret = loop {
            let head = self.head.load(Acquire);
            spec::op_clear_define(); // empty observation point
            if head.is_null() {
                break -1;
            }
            let next = unsafe { (*head).next.read() };
            // AcqRel: the acquire half chains pops through the head CAS —
            // with plain release, two pops could be r-concurrent (the head
            // pointer can *revisit* an old node, so a stale head load can
            // still CAS successfully) and LIFO would be unverifiable.
            if self
                .head
                .compare_exchange(head, next, AcqRel, Relaxed)
                .is_ok()
            {
                spec::op_clear_define(); // the successful CAS orders pops
                break unsafe { (*head).value.read() };
            }
            mc::spin_loop();
        };
        spec::method_end(ret);
        ret
    }
}

/// The equivalent sequential data structure is `Vec<i64>` used as a
/// stack; `pop` may spuriously report empty when a justifying subhistory
/// agrees (same shape as the paper's Figure 6 queue spec).
fn stack_spec() -> Spec<Vec<i64>> {
    Spec::new("treiber-stack", Vec::new)
        .method("push", |m| m.side_effect(|s, e| s.push(e.arg(0).as_i64())))
        .method("pop", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.last().copied().unwrap_or(-1);
                e.set_s_ret(s_ret);
                if s_ret != -1 && e.ret().as_i64() != -1 {
                    s.pop();
                }
            })
            .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
            .justify_post(|_, e| e.ret().as_i64() != -1 || e.s_ret.as_i64() == -1)
        })
}

fn run(push_ord: MemOrd) -> Stats {
    spec::check(Config::default(), stack_spec(), move || {
        let s = Stack::new(push_ord);
        let s2 = s.clone();
        let t = mc::thread::spawn(move || {
            let _ = s2.pop();
        });
        s.push(1);
        s.push(2);
        let _ = s.pop();
        t.join();
    })
}

fn main() {
    println!("== correct stack (push CAS = release) ==");
    let stats = run(Release);
    println!("{}", stats.summary());
    assert!(!stats.buggy(), "the correct stack must pass");
    println!("specification holds on every feasible execution.\n");

    println!("== buggy stack (push CAS weakened to relaxed) ==");
    let stats = run(Relaxed);
    println!("{}", stats.summary());
    match stats.bugs.first() {
        Some(b) => {
            println!("detected: {}", b.bug);
            println!("\nwitness execution:\n{}", b.trace);
        }
        None => println!("(not detected — unexpected!)"),
    }
}
