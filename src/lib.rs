//! # cdsspec
//!
//! Specification checking for concurrent data structures under the
//! C/C++11 memory model — a Rust reproduction of *"Checking Concurrent
//! Data Structures Under the C/C++11 Memory Model"* (Ou & Demsky,
//! PPoPP 2017).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`mc`] — the stateless model checker for modeled C11 atomics (the
//!   CDSChecker substrate): [`mc::Atomic`], [`mc::Data`], [`mc::fence`],
//!   [`mc::thread`], [`mc::explore()`];
//! * [`core`] — CDSSpec itself: the [`core::Spec`] DSL, ordering-point
//!   annotations, and the non-deterministic-linearizability checker;
//! * [`structures`] — the paper's ten benchmark data structures plus the
//!   §2 blocking queue and the §2.2 relaxed register;
//! * [`inject`] — the §6.4.2 fault-injection campaign machinery;
//! * [`c11`] — the shared memory-model vocabulary (events, orderings,
//!   clocks, traces).
//!
//! ## Quick start
//!
//! ```
//! use cdsspec::prelude::*;
//!
//! // Model-check the paper's blocking queue against its Figure 6 spec.
//! let stats = cdsspec::core::check(
//!     Config::default(),
//!     cdsspec::structures::blocking_queue::make_spec(),
//!     cdsspec::structures::blocking_queue::unit_test(
//!         Ords::defaults(cdsspec::structures::blocking_queue::SITES),
//!     ),
//! );
//! assert!(!stats.buggy());
//! ```
//!
//! See `examples/` for guided tours and `crates/bench/src/bin/` for the
//! harnesses regenerating every table and figure of the paper.

pub use cdsspec_c11 as c11;
pub use cdsspec_core as core;
pub use cdsspec_inject as inject;
pub use cdsspec_mc as mc;
pub use cdsspec_structures as structures;

/// The types most programs need.
pub mod prelude {
    pub use cdsspec_c11::MemOrd;
    pub use cdsspec_core::{MethodSpec, Spec};
    pub use cdsspec_mc::{Atomic, Config, Data, Stats};
    pub use cdsspec_structures::{Ords, SiteKind, SiteSpec};
}
