//! Cross-crate litmus tests through the facade: a condensed version of
//! the `cdsspec-mc` suite plus combined checker+litmus scenarios that only
//! make sense at the workspace level.

use cdsspec::mc;
use cdsspec::prelude::*;
use mc::mc_assert;
use mc::MemOrd::*;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// The full release-sequence rule through the facade: an acquire read of
/// an RMW chain synchronizes with the release head.
#[test]
fn release_sequence_via_facade() {
    mc::model(|| {
        let data = Atomic::new(0i64);
        let x = Atomic::new(0i64);
        let t1 = mc::thread::spawn(move || {
            data.store(5, Relaxed);
            x.store(1, Release);
        });
        let t2 = mc::thread::spawn(move || {
            x.fetch_add(1, Relaxed);
        });
        if x.load(Acquire) == 2 {
            // Read the RMW: synchronizes with the release head through
            // the release sequence.
            mc_assert!(data.load(Relaxed) == 5);
        }
        t1.join();
        t2.join();
    });
}

/// Dekker-style mutual exclusion with SC fences: both threads entering is
/// impossible.
#[test]
fn dekker_with_sc_fences() {
    let entered: Arc<Mutex<u32>> = Arc::new(Mutex::new(0));
    let e2 = Arc::clone(&entered);
    let stats = mc::explore(Config::validating(), move || {
        let flag0 = Atomic::new(0i64);
        let flag1 = Atomic::new(0i64);
        let in_crit = mc::Data::new(0i64);
        let e3 = Arc::clone(&e2);
        let t = mc::thread::spawn(move || {
            flag1.store(1, Relaxed);
            mc::fence(SeqCst);
            if flag0.load(Relaxed) == 0 {
                // critical section
                in_crit.write(in_crit.read() + 1);
                *e3.lock().unwrap() += 1;
            }
        });
        flag0.store(1, Relaxed);
        mc::fence(SeqCst);
        if flag1.load(Relaxed) == 0 {
            in_crit.write(in_crit.read() + 1);
        }
        t.join();
    });
    // If both ever entered, the Data race detector would fire.
    assert!(
        !stats.buggy(),
        "Dekker violated: {:?}",
        stats.bugs.first().map(|b| &b.bug)
    );
}

/// Transitive release/acquire chains across three threads.
#[test]
fn transitive_message_passing() {
    mc::model(|| {
        let data = Atomic::new(0i64);
        let f1 = Atomic::new(0i64);
        let f2 = Atomic::new(0i64);
        let a = mc::thread::spawn(move || {
            data.store(9, Relaxed);
            f1.store(1, Release);
        });
        let b = mc::thread::spawn(move || {
            if f1.load(Acquire) == 1 {
                f2.store(1, Release);
            }
        });
        if f2.load(Acquire) == 1 {
            mc_assert!(data.load(Relaxed) == 9, "transitivity lost");
        }
        a.join();
        b.join();
    });
}

/// Modification-order coherence observed through the facade: two readers
/// can disagree about *when* they see stores, but never read backwards.
#[test]
fn coherence_never_reads_backwards() {
    mc::model(|| {
        let x = Atomic::new(0i64);
        let w = mc::thread::spawn(move || {
            x.store(1, Relaxed);
            x.store(2, Relaxed);
        });
        let r = mc::thread::spawn(move || {
            let a = x.load(Relaxed);
            let b = x.load(Relaxed);
            mc_assert!(b >= a, "coherence violated: {} then {}", a, b);
        });
        w.join();
        r.join();
    });
}

/// Weak CAS spurious failure is observable; strong CAS reading the
/// expected latest value is not allowed to fail.
#[test]
fn weak_vs_strong_cas() {
    let outcomes: Arc<Mutex<BTreeSet<(bool, bool)>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let oc = Arc::clone(&outcomes);
    let stats = mc::explore(Config::validating(), move || {
        let x = Atomic::new(0i64);
        let weak = x.compare_exchange_weak(0, 1, AcqRel, Relaxed).is_ok();
        let strong = x
            .compare_exchange(if weak { 1 } else { 0 }, 2, AcqRel, Relaxed)
            .is_ok();
        oc.lock().unwrap().insert((weak, strong));
    });
    assert!(!stats.buggy());
    let outcomes = outcomes.lock().unwrap();
    assert!(outcomes.contains(&(true, true)));
    assert!(
        outcomes.contains(&(false, true)),
        "weak CAS must fail spuriously sometimes"
    );
    // A single-threaded strong CAS with the correct expected value never
    // fails: no (_, false) outcome.
    assert!(outcomes.iter().all(|&(_, s)| s), "{outcomes:?}");
}

/// A modeled thread panicking inside nested spawns is reported cleanly.
#[test]
fn nested_spawn_panic_reporting() {
    let stats = mc::explore(Config::default(), || {
        let t = mc::thread::spawn(|| {
            let inner = mc::thread::spawn(|| {
                panic!("inner failure");
            });
            inner.join();
        });
        t.join();
    });
    assert!(stats.buggy());
    assert!(stats.bugs[0].bug.to_string().contains("inner failure"));
}
