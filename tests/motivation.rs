//! Integration tests reproducing the paper's motivating examples
//! (Figures 1–4) end-to-end through the facade crate.

use cdsspec::core as spec;
use cdsspec::mc;
use cdsspec::prelude::*;
use cdsspec::structures::blocking_queue::{make_spec, BlockingQueue};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Figure 1: without proper synchronization, a dequeuer could read
/// uninitialized node fields. With the queue's release/acquire CAS, the
/// dequeued object is always fully initialized.
#[test]
fn figure1_dequeued_items_are_initialized() {
    let stats = spec::check(Config::default(), make_spec(), || {
        let q = BlockingQueue::new();
        let q1 = q.clone();
        let t = mc::thread::spawn(move || {
            // (1)+(2): initialize the "object" (the node's data field is
            // the modeled non-atomic) and enqueue it.
            q1.enq(42);
        });
        // (3)+(4): dequeue and read the field; a race or stale read would
        // be reported.
        let r1 = q.deq();
        mc::mc_assert!(r1 == -1 || r1 == 42, "dequeued garbage: {}", r1);
        t.join();
    });
    assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
}

/// Figure 3: the cross-queue execution where both dequeues return -1 is
/// observable under release/acquire — and the non-deterministic spec
/// accepts it (Figure 4(e)).
#[test]
fn figure3_outcome_exists_and_is_accepted() {
    let outcomes: Arc<Mutex<BTreeSet<(i64, i64)>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let oc = Arc::clone(&outcomes);
    let stats = spec::check(Config::default(), make_spec(), move || {
        let x = BlockingQueue::new();
        let y = BlockingQueue::new();
        let (x1, y1) = (x.clone(), y.clone());
        let r1 = mc::Data::new(0i64);
        let t = mc::thread::spawn(move || {
            x1.enq(1);
            r1.write(y1.deq());
        });
        y.enq(1);
        let r2 = x.deq();
        t.join();
        oc.lock().unwrap().insert((r1.read(), r2));
    });
    assert!(
        !stats.buggy(),
        "the spec must accept every behavior: {}",
        stats.bugs[0].bug
    );
    let outcomes = outcomes.lock().unwrap();
    assert!(
        outcomes.contains(&(-1, -1)),
        "the non-linearizable r1=r2=-1 outcome must be observable: {outcomes:?}"
    );
    assert!(
        outcomes.contains(&(1, 1)),
        "the SC outcome must also exist: {outcomes:?}"
    );
}

/// Figure 4(b): with seq_cst everywhere the r1=r2=-1 outcome would be
/// forbidden. Our queue uses release/acquire, so we emulate the claim at
/// the memory-model level with two SC queues of one slot each (registers).
#[test]
fn figure4b_sc_forbids_double_empty() {
    let outcomes: Arc<Mutex<BTreeSet<(i64, i64)>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let oc = Arc::clone(&outcomes);
    let stats = mc::explore(Config::validating(), move || {
        use mc::MemOrd::SeqCst;
        let x = mc::Atomic::new(0i64);
        let y = mc::Atomic::new(0i64);
        let r1 = mc::Data::new(0i64);
        let t = mc::thread::spawn(move || {
            x.store(1, SeqCst);
            r1.write(y.load(SeqCst));
        });
        y.store(1, SeqCst);
        let r2 = x.load(SeqCst);
        t.join();
        oc.lock().unwrap().insert((r1.read(), r2));
    });
    assert!(!stats.buggy());
    assert!(
        !outcomes.lock().unwrap().contains(&(0, 0)),
        "seq_cst forbids the store-buffering outcome"
    );
}

/// §2.1: the single-thread enq-then-deq must never spuriously return
/// empty — the justifying prefix contains the enqueue.
#[test]
fn single_thread_spurious_empty_forbidden() {
    let stats = spec::check(Config::default(), make_spec(), || {
        let q = BlockingQueue::new();
        q.enq(5);
        let r = q.deq();
        mc::mc_assert!(r == 5, "single-thread deq returned {}", r);
    });
    assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
}

/// §3.2 composability: two independently specified queues checked in one
/// execution — each against its own sequential state (Theorem 1's modular
/// reasoning, exercised).
#[test]
fn composition_checks_each_object_independently() {
    let stats = spec::check(Config::default(), make_spec(), || {
        let a = BlockingQueue::new();
        let b = BlockingQueue::new();
        let (a1, b1) = (a.clone(), b.clone());
        let t = mc::thread::spawn(move || {
            a1.enq(10);
            b1.enq(20);
        });
        let ra = a.deq();
        let rb = b.deq();
        mc::mc_assert!(ra == -1 || ra == 10);
        mc::mc_assert!(rb == -1 || rb == 20);
        t.join();
    });
    assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
}
