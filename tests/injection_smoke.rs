//! Smoke tests for the fault-injection pipeline at workspace level: the
//! classifier, the weakening ladders end-to-end, and representative
//! detections in each Figure 8 category.

use cdsspec::inject;
use cdsspec::mc;
use cdsspec::prelude::*;
use cdsspec::structures::registry::benchmarks;

fn quick() -> Config {
    Config {
        max_executions: 30_000,
        ..Config::default()
    }
}

/// A Built-in detection: the seqlock's weakened data store races.
#[test]
fn builtin_category_detection() {
    let bench = benchmarks()
        .into_iter()
        .find(|b| b.name == "Seqlock")
        .unwrap();
    let (_, trials) = inject::inject_benchmark(&bench, &quick());
    assert!(
        trials
            .iter()
            .any(|t| t.detected == Some(mc::BugCategory::BuiltIn)),
        "seqlock injections should include a built-in detection: {trials:?}"
    );
}

/// An Admissibility detection: weakening the MPMC stamp orderings leaves
/// required-ordered calls concurrent.
#[test]
fn admissibility_category_detection() {
    let bench = benchmarks()
        .into_iter()
        .find(|b| b.name == "MPMC Queue")
        .unwrap();
    let (row, trials) = inject::inject_benchmark(&bench, &quick());
    assert!(
        row.admissibility > 0,
        "MPMC detections should include admissibility (the paper's shape): {trials:?}"
    );
}

/// An Assertion detection: the M&S queue's weakened head CAS breaks FIFO
/// per the sequential spec.
#[test]
fn assertion_category_detection() {
    let bench = benchmarks()
        .into_iter()
        .find(|b| b.name == "M&S Queue")
        .unwrap();
    let (row, trials) = inject::inject_benchmark(&bench, &quick());
    assert!(
        row.assertion > 0,
        "M&S detections should include spec assertions: {trials:?}"
    );
}

/// Injection trials never report a bug for the un-weakened configuration
/// (the campaign must start from a clean baseline).
#[test]
fn baseline_is_clean_for_every_benchmark() {
    for bench in benchmarks() {
        let stats = bench.check_default(quick());
        assert!(
            !stats.buggy(),
            "{} baseline dirty: {}",
            bench.name,
            stats.bugs[0].bug
        );
    }
}

/// The weakening ladder matches the paper's §6.4.2 description for each
/// site kind, end-to-end through `Ords`.
#[test]
fn weakening_ladders() {
    use cdsspec::c11::MemOrd::*;
    static SITES: &[SiteSpec] = &[
        cdsspec::structures::site("l", SeqCst, SiteKind::Load),
        cdsspec::structures::site("s", SeqCst, SiteKind::Store),
        cdsspec::structures::site("r", SeqCst, SiteKind::Rmw),
    ];
    let mut o = Ords::defaults(SITES);
    assert!(o.weaken(0));
    assert_eq!(o.get(0), Acquire);
    assert!(o.weaken(0));
    assert_eq!(o.get(0), Relaxed);
    assert!(!o.weaken(0));

    assert!(o.weaken(1));
    assert_eq!(o.get(1), Release);

    assert!(o.weaken(2));
    assert_eq!(o.get(2), AcqRel);
    assert!(o.weaken(2));
    assert_eq!(o.get(2), Release);
    assert!(o.weaken(2));
    assert_eq!(o.get(2), Relaxed);
}
