//! §3.2 composability (Theorem 1): if each object is non-deterministic
//! linearizable for its spec, the composition is too — exercised by
//! checking executions that mix several independently-specified objects,
//! including objects of *different types* through multiple plugins.

use cdsspec::core as spec;
use cdsspec::mc;
use cdsspec::prelude::*;
use cdsspec::structures::blocking_queue::BlockingQueue;
use cdsspec::structures::register::Register;
use cdsspec::structures::ticket_lock::TicketLock;
use std::sync::Arc;

/// Two queues + cross-thread traffic: each instance is checked against
/// its own sequential FIFO.
#[test]
fn two_queues_compose() {
    let stats = spec::check(
        Config::default(),
        cdsspec::structures::blocking_queue::make_spec(),
        || {
            let x = BlockingQueue::new();
            let y = BlockingQueue::new();
            let (x1, y1) = (x.clone(), y.clone());
            let t = mc::thread::spawn(move || {
                x1.enq(1);
                let got = y1.deq();
                mc::mc_assert!(got == -1 || got == 2);
            });
            y.enq(2);
            let got = x.deq();
            mc::mc_assert!(got == -1 || got == 1);
            t.join();
        },
    );
    assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
}

/// Heterogeneous composition: a register and a queue checked by two
/// plugins in the same exploration (Definition 8's composed spec).
#[test]
fn register_and_queue_compose_via_two_plugins() {
    let reg_spec = Arc::new(cdsspec::structures::register::make_spec());
    let q_spec = Arc::new(cdsspec::structures::blocking_queue::make_spec());
    let plugins: Vec<Box<dyn mc::Plugin>> = vec![
        Box::new(spec::SpecChecker::new(reg_spec)),
        Box::new(spec::SpecChecker::new(q_spec)),
    ];
    let stats = mc::explore_with_plugins(Config::default(), plugins, || {
        let r = Register::new();
        let q = BlockingQueue::new();
        let (r1, q1) = (r.clone(), q.clone());
        let t = mc::thread::spawn(move || {
            r1.write(5);
            q1.enq(7);
        });
        let _ = r.read();
        let _ = q.deq();
        t.join();
    });
    // Each plugin sees calls for methods it doesn't know; the register
    // plugin must not reject queue calls and vice versa… it WILL reject
    // unknown methods by design, so this asserts the opposite: the strict
    // unknown-method check fires, documenting that heterogeneous
    // compositions need a combined spec (Definition 8) rather than two
    // independent ones.
    assert!(stats.buggy());
    assert!(stats.bugs[0]
        .bug
        .to_string()
        .contains("no specification for method"));
}

/// The supported heterogeneous form: one spec whose method set covers both
/// objects (the composed specification of Definition 8 — per-object state
/// still separates because the checker groups calls by instance).
#[test]
fn combined_spec_composes_heterogeneous_objects() {
    // Sequential state: (register value, queue front) — each object only
    // touches its own half, so a product state works as Definition 8's
    // composition.
    #[derive(Clone, Default)]
    struct Product {
        reg: i64,
        q: std::collections::VecDeque<i64>,
    }
    let combined = Spec::new("register×queue", Product::default)
        .method("write", |m| {
            m.side_effect(|s: &mut Product, e| s.reg = e.arg(0).as_i64())
        })
        .method("read", |m| {
            m.side_effect(|s, e| e.set_s_ret(s.reg))
                .justify_post(|_, e| {
                    e.ret() == e.s_ret
                        || e.concurrent
                            .iter()
                            .any(|c| c.name == "write" && c.arg(0) == e.ret())
                })
        })
        .method("enq", |m| {
            m.side_effect(|s, e| s.q.push_back(e.arg(0).as_i64()))
        })
        .method("deq", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.q.front().copied().unwrap_or(-1);
                e.set_s_ret(s_ret);
                if s_ret != -1 && e.ret().as_i64() != -1 {
                    s.q.pop_front();
                }
            })
            .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
            .justify_post(|_, e| e.ret().as_i64() != -1 || e.s_ret.as_i64() == -1)
        });

    let stats = spec::check(Config::default(), combined, || {
        let r = Register::new();
        let q = BlockingQueue::new();
        let (r1, q1) = (r.clone(), q.clone());
        let t = mc::thread::spawn(move || {
            r1.write(5);
            q1.enq(7);
        });
        let _ = r.read();
        let _ = q.deq();
        t.join();
    });
    assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
}

/// A lock guarding a queue: the composition of a lock spec and a queue
/// spec via a combined method set; the checker still separates the two
/// objects' sequential states by instance.
#[test]
fn lock_protected_queue_composes() {
    #[derive(Clone, Default)]
    struct Product {
        depth: i64,
        q: std::collections::VecDeque<i64>,
    }
    let combined = Spec::new("lock×queue", Product::default)
        .method("lock", |m| {
            m.pre(|s: &Product, _| s.depth == 0)
                .side_effect(|s, _| s.depth += 1)
        })
        .method("unlock", |m| {
            m.pre(|s: &Product, _| s.depth == 1)
                .side_effect(|s, _| s.depth -= 1)
        })
        .method("enq", |m| {
            m.side_effect(|s, e| s.q.push_back(e.arg(0).as_i64()))
        })
        .method("deq", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.q.front().copied().unwrap_or(-1);
                e.set_s_ret(s_ret);
                if s_ret != -1 && e.ret().as_i64() != -1 {
                    s.q.pop_front();
                }
            })
            .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
            .justify_post(|_, e| e.ret().as_i64() != -1 || e.s_ret.as_i64() == -1)
        });
    let stats = spec::check(Config::default(), combined, || {
        let l = TicketLock::new();
        let q = BlockingQueue::new();
        let (l1, q1) = (l.clone(), q.clone());
        let t = mc::thread::spawn(move || {
            l1.lock();
            q1.enq(1);
            let got = q1.deq();
            mc::mc_assert!(got == 1, "serialized deq must see own enq, got {}", got);
            l1.unlock();
        });
        l.lock();
        q.enq(2);
        let got = q.deq();
        mc::mc_assert!(got == 2, "serialized deq must see own enq, got {}", got);
        l.unlock();
        t.join();
    });
    assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
}
