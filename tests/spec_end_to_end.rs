//! End-to-end integration tests of the full pipeline (facade → checker →
//! model checker) across the benchmark suite: every benchmark's standard
//! unit test passes with correct orderings, and the checker's diagnostic
//! machinery produces usable output for a seeded bug.

use cdsspec::core as spec;
use cdsspec::mc;
use cdsspec::prelude::*;
use cdsspec::structures::registry::benchmarks;

/// Every Figure 7 benchmark is clean with correct orderings. Release
/// builds explore exhaustively (this is what `figure7` reports); debug
/// builds get a smaller budget so `cargo test` stays snappy — a truncated
/// clean run is still a meaningful smoke check there.
#[test]
fn all_benchmarks_pass_with_correct_orderings() {
    let exhaustive = !cfg!(debug_assertions);
    let cap = if exhaustive { 2_000_000 } else { 40_000 };
    for bench in benchmarks() {
        let config = Config {
            max_executions: cap,
            ..Config::default()
        };
        let stats = bench.check_default(config);
        assert!(
            !stats.buggy(),
            "{}: unexpected bug with correct orderings: {}",
            bench.name,
            stats.bugs[0].bug
        );
        assert!(stats.feasible > 0, "{}: no feasible executions", bench.name);
        if exhaustive {
            assert!(!stats.truncated(), "{}: exploration truncated", bench.name);
        }
    }
}

/// Every benchmark has at least one detectable injection — the spec isn't
/// vacuous for any structure.
#[test]
fn every_benchmark_has_a_detectable_injection() {
    let cap = if cfg!(debug_assertions) {
        20_000
    } else {
        50_000
    };
    let config = Config {
        max_executions: cap,
        ..Config::default()
    };
    for bench in benchmarks() {
        let (row, trials) = cdsspec::inject::inject_benchmark(&bench, &config);
        assert!(row.injections > 0, "{}: nothing injectable", bench.name);
        assert!(
            row.detected() > 0,
            "{}: no injection detected — vacuous spec? trials: {:?}",
            bench.name,
            trials
        );
    }
}

/// The diagnostic report of a violation names the method, the values, and
/// carries a renderable witness trace.
#[test]
fn diagnostics_are_actionable() {
    // Seed a deliberate spec violation: claim a queue is LIFO.
    let bogus = spec::Spec::new("bogus-stack-view", Vec::<i64>::new)
        .method("enq", |m| m.side_effect(|s, e| s.push(e.arg(0).as_i64())))
        .method("deq", |m| {
            m.side_effect(|s, e| {
                let s_ret = s.last().copied().unwrap_or(-1);
                e.set_s_ret(s_ret);
                if s_ret != -1 && e.ret().as_i64() != -1 {
                    s.pop();
                }
            })
            .post(|_, e| e.ret().as_i64() == -1 || e.ret() == e.s_ret)
        });
    let stats = spec::check(Config::default(), bogus, || {
        let q = cdsspec::structures::blocking_queue::BlockingQueue::new();
        q.enq(1);
        q.enq(2);
        let _ = q.deq(); // FIFO returns 1; the bogus LIFO spec expects 2
    });
    assert!(stats.buggy(), "the bogus spec must be violated");
    let bug = &stats.bugs[0];
    let msg = bug.bug.to_string();
    assert!(msg.contains("deq"), "message names the method: {msg}");
    assert!(
        msg.contains("history"),
        "message includes the history: {msg}"
    );
    assert!(
        bug.trace.contains("rmw"),
        "witness trace shows the atomic ops: {}",
        bug.trace
    );
}

/// Plugin errors for unknown methods are loud, not silent.
#[test]
fn unknown_method_is_reported() {
    let empty_spec = spec::Spec::new("empty", || ());
    let stats = spec::check(Config::default(), empty_spec, || {
        let q = cdsspec::structures::blocking_queue::BlockingQueue::new();
        q.enq(1);
    });
    assert!(stats.buggy());
    assert!(stats.bugs[0]
        .bug
        .to_string()
        .contains("no specification for method"));
}

/// The history cap + sampling policy keep the checker usable when the
/// call graph is wide (many unordered calls).
#[test]
fn history_sampling_policy_works() {
    use cdsspec::core::HistoryPolicy;
    let sampled = cdsspec::structures::register::make_spec().with_policy(HistoryPolicy::Sample {
        count: 16,
        seed: 42,
    });
    let stats = spec::check(Config::default(), sampled, || {
        let r = cdsspec::structures::register::Register::new();
        let r1 = r.clone();
        let t = mc::thread::spawn(move || {
            r1.write(1);
            let _ = r1.read();
        });
        r.write(2);
        let _ = r.read();
        t.join();
    });
    assert!(!stats.buggy(), "bug: {}", stats.bugs[0].bug);
}
